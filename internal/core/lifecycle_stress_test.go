package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/lifecycle"
	"repro/internal/sketch"
)

// settleGoroutines polls until the goroutine count drops back to the
// baseline (plus slack for runtime helpers) or the deadline passes,
// returning the final count.
func settleGoroutines(baseline int) int {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 || time.Now().After(deadline) {
			return n
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancellationStress races concurrent solves — half of them
// canceled mid-flight — and then checks the three invariants the
// lifecycle layer promises: canceled queries report ErrCanceled (never
// a corrupt result), no goroutine outlives its query, and the shared
// partition-tree cache stays consistent (exactly one tree, still
// serving hits). Run under -race this also proves the checkpoint
// plumbing doesn't data-race with the solver's own parallelism.
func TestCancellationStress(t *testing.T) {
	db := lcDB(t, 20000)
	prep, err := Prepare(db, lcQuery)
	if err != nil {
		t.Fatal(err)
	}
	cache := sketch.NewCache(0)
	prep.SketchCache = cache
	opts := Options{Strategy: SketchRefineStrategy, SketchCache: cache}
	// Warm the tree so the raced solves measure solve cancellation, not
	// build coalescing (cancel_test.go covers cold builds).
	if _, err := prep.RunContext(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	cancels := make([]context.CancelFunc, workers)
	for i := 0; i < workers; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		wg.Add(1)
		go func(i int, ctx context.Context) {
			defer wg.Done()
			_, errs[i] = prep.RunContext(ctx, opts)
		}(i, ctx)
	}
	// Cancel the odd half mid-flight; the even half runs to completion.
	time.Sleep(2 * time.Millisecond)
	for i := 1; i < workers; i += 2 {
		cancels[i]()
	}
	wg.Wait()
	for i := 0; i < workers; i += 2 {
		cancels[i]()
	}

	for i, err := range errs {
		if i%2 == 0 {
			if err != nil {
				t.Errorf("uncanceled worker %d: %v", i, err)
			}
		} else if err != nil && !errors.Is(err, lifecycle.ErrCanceled) {
			// nil is fine — the solve may have finished before the cancel.
			t.Errorf("canceled worker %d: %v, want nil or ErrCanceled", i, err)
		}
	}
	if n := settleGoroutines(baseline); n > baseline+2 {
		t.Errorf("goroutines leaked: baseline %d, now %d", baseline, n)
	}
	// Cache consistency: still exactly one tree, and it still serves.
	if got := cache.Len(); got != 1 {
		t.Errorf("cache entries = %d, want 1", got)
	}
	hitsBefore := cache.Stats().Hits
	if res, err := prep.RunContext(context.Background(), opts); err != nil || len(res.Packages) == 0 {
		t.Fatalf("post-stress solve: packages=%v err=%v", res, err)
	}
	if cache.Stats().Hits <= hitsBefore {
		t.Error("post-stress solve missed the cache")
	}
}

// TestCanceledBuildLeavesCacheConsistent cancels a solve during the
// offline partition-tree build (a deadline shorter than the build) and
// checks the cache discards the partial tree: no entry is published,
// and a follow-up uncanceled solve rebuilds cleanly.
func TestCanceledBuildLeavesCacheConsistent(t *testing.T) {
	db := lcDB(t, 50000)
	prep, err := Prepare(db, lcQuery)
	if err != nil {
		t.Fatal(err)
	}
	cache := sketch.NewCache(0)
	prep.SketchCache = cache
	opts := Options{Strategy: SketchRefineStrategy, SketchCache: cache}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := prep.RunContext(ctx, opts)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // land inside the cold build
	cancel()
	if err := <-done; err != nil && !errors.Is(err, lifecycle.ErrCanceled) {
		t.Fatalf("canceled build = %v, want nil or ErrCanceled", err)
	} else if err != nil && cache.Len() != 0 {
		t.Errorf("canceled build published %d cache entries", cache.Len())
	}
	// The cache recovers: a clean solve builds and publishes one tree.
	if res, err := prep.RunContext(context.Background(), opts); err != nil || len(res.Packages) == 0 {
		t.Fatalf("rebuild solve: err=%v", err)
	}
	if cache.Len() != 1 {
		t.Errorf("cache entries after rebuild = %d, want 1", cache.Len())
	}
}

// TestCanceled1MReturnsPromptly is the acceptance bar for cooperative
// cancellation at scale: over a warmed 1M-row partition tree, a cancel
// fired mid-solve must return within 250ms. Short mode skips it (the
// dataset generation and warm build dominate the test's wall time).
func TestCanceled1MReturnsPromptly(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row dataset build in -short mode")
	}
	db := lcDB(t, 1000000)
	prep, err := Prepare(db, lcQuery)
	if err != nil {
		t.Fatal(err)
	}
	cache := sketch.NewCache(0)
	prep.SketchCache = cache
	opts := Options{Strategy: SketchRefineStrategy, SketchCache: cache}
	if _, err := prep.RunContext(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := prep.RunContext(ctx, opts)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // give the solve time to start
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if lat := time.Since(start); lat > 250*time.Millisecond {
			t.Errorf("cancel-to-return latency %v > 250ms", lat)
		}
		if err != nil && !errors.Is(err, lifecycle.ErrCanceled) {
			t.Errorf("err = %v, want nil or ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled 1M solve did not return within 5s")
	}
	// The warm tree survived the cancel.
	if res, err := prep.RunContext(context.Background(), opts); err != nil || len(res.Packages) == 0 {
		t.Fatalf("post-cancel solve: err=%v", err)
	}
}

package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/minidb"
	"repro/internal/plan"
)

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{
		Auto: "auto", BruteForceStrategy: "brute-force", PrunedEnum: "pruned-enum",
		LocalSearchStrategy: "local-search", Solver: "solver",
	}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), s)
		}
	}
	if !strings.Contains(Strategy(42).String(), "42") {
		t.Error("unknown strategy should render its number")
	}
}

func TestAutoPicksLocalSearchForLargeNonlinear(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 120, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	// A non-linear constraint over far more candidates than the exact
	// enumeration threshold: Auto must fall back to local search.
	res, err := Evaluate(db, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) * SUM(P.protein) >= 100000
		      AND SUM(P.calories) <= 3000
		MAXIMIZE SUM(P.protein)`, Options{Seed: 3, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Strategy != LocalSearchStrategy {
		t.Errorf("auto chose %v for large non-linear query", res.Stats.Strategy)
	}
	// any returned package must genuinely satisfy the non-linear formula
	for _, p := range res.Packages {
		cal, _ := p.AggValues["SUM(R.calories)"].AsFloat()
		prot, _ := p.AggValues["SUM(R.protein)"].AsFloat()
		if cal*prot < 100000-1e-6 || cal > 3000 {
			t.Errorf("non-linear constraint violated: %g * %g, cal %g", cal, prot, cal)
		}
	}
}

func TestTimeoutIsRespected(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 26, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	// A brute-force run with a tiny budget must return promptly and be
	// flagged inexact.
	res, err := Evaluate(db, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 500 AND 5000
		MAXIMIZE SUM(P.protein)`, Options{Strategy: BruteForceStrategy, Timeout: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Exact {
		t.Error("budget-starved brute force must not claim exactness")
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{
		"":              Auto,
		"auto":          Auto,
		"solver":        Solver,
		"milp":          Solver,
		"sketch":        SketchRefineStrategy,
		"Sketch-Refine": SketchRefineStrategy,
		"pruned":        PrunedEnum,
		"local-search":  LocalSearchStrategy,
		"brute":         BruteForceStrategy,
	}
	for name, want := range cases {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseStrategy("quantum"); err == nil {
		t.Error("ParseStrategy should reject unknown names")
	}
}

func TestSketchStrategyThroughEngine(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 300, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	q := `SELECT PACKAGE(R) AS P FROM recipes R
	      SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
	      MAXIMIZE SUM(P.protein)`
	res, err := Evaluate(db, q, Options{Strategy: SketchRefineStrategy, Seed: 1, SketchPartitionSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Strategy != SketchRefineStrategy {
		t.Fatalf("strategy = %v", res.Stats.Strategy)
	}
	if res.Stats.Partitions == 0 {
		t.Error("stats should report the partition count")
	}
	if len(res.Packages) != 1 {
		t.Fatalf("got %d packages", len(res.Packages))
	}
	exact, err := Evaluate(db, q, Options{Strategy: Solver, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt := exact.Packages[0].Objective
	got := res.Packages[0].Objective
	if got > opt+1e-6 {
		t.Fatalf("sketch objective %.3f beats proven optimum %.3f", got, opt)
	}
	if gap := (opt - got) / opt; gap > 0.25 {
		t.Errorf("objective gap %.1f%% > 25%%", gap*100)
	}
}

func TestAutoSelectsSketchAboveThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a >4096-tuple relation")
	}
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: plan.DefaultCostModel().SketchThreshold + 500, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	q := `SELECT PACKAGE(R) AS P FROM recipes R
	      SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
	      MAXIMIZE SUM(P.protein)`
	res, err := Evaluate(db, q, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Strategy != SketchRefineStrategy {
		t.Fatalf("auto chose %v for %d candidates", res.Stats.Strategy, res.Stats.Candidates)
	}
	if len(res.Packages) == 0 {
		t.Fatal("no package returned")
	}
	// Require pins stay on the sketch path: the pinned tuple's leaf
	// partition is forced into every sketch level.
	pinned, err := Evaluate(db, q, Options{Seed: 1, Strategy: SketchRefineStrategy, Require: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Stats.Strategy != SketchRefineStrategy {
		t.Fatalf("Require should stay on sketch-refine, got %v", pinned.Stats.Strategy)
	}
	if len(pinned.Packages) == 0 {
		t.Fatal("no package returned with a pinned tuple")
	}
	if pinned.Packages[0].Mult[0] < 1 {
		t.Errorf("pinned candidate 0 missing from the package (mult %d)", pinned.Packages[0].Mult[0])
	}
}

// TestSketchMultiplePackages covers adaptive exploration's Replace on
// the sketch path: asking for several packages must yield distinct
// multiplicity vectors (via exclusion cuts in sketch space — the query
// has no REPEAT), best-first.
func TestSketchMultiplePackages(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 300, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(db, `SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
		MAXIMIZE SUM(P.protein)`,
		Options{Strategy: SketchRefineStrategy, Seed: 1, Limit: 3, SketchPartitionSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) < 2 {
		t.Fatalf("got %d packages, want >= 2 distinct", len(res.Packages))
	}
	seen := map[string]bool{}
	for i, p := range res.Packages {
		k := MultKey(p.Mult)
		if seen[k] {
			t.Fatalf("package %d duplicates an earlier one", i)
		}
		seen[k] = true
		if i > 0 && p.Objective > res.Packages[i-1].Objective+1e-9 {
			t.Fatalf("packages not best-first: %g after %g", p.Objective, res.Packages[i-1].Objective)
		}
	}
}

// TestSketchMultiplePackagesRepeat covers the other multi-package
// branch: REPEAT blocks exclusion cuts, so distinct packages come from
// partition-size/seed perturbation.
func TestSketchMultiplePackagesRepeat(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 300, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(db, `SELECT PACKAGE(R) AS P FROM recipes R REPEAT 1
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
		MAXIMIZE SUM(P.protein)`,
		Options{Strategy: SketchRefineStrategy, Seed: 1, Limit: 3, SketchPartitionSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) == 0 {
		t.Fatal("no packages returned")
	}
	seen := map[string]bool{}
	for i, p := range res.Packages {
		k := MultKey(p.Mult)
		if seen[k] {
			t.Fatalf("package %d duplicates an earlier one", i)
		}
		seen[k] = true
	}
	found := false
	for _, n := range res.Stats.Notes {
		if strings.Contains(n, "partition perturbation") {
			found = true
		}
	}
	if !found {
		t.Fatalf("REPEAT query should use the perturbation path, notes: %v", res.Stats.Notes)
	}
}

// TestSketchCoversAvgMinMaxNoFallback pins the full-grammar contract:
// AVG/MIN/MAX atoms and 2-branch disjunctions run under the sketch
// strategy without falling back to the exact solver, proven by the
// sketch-specific stats being populated.
func TestSketchCoversAvgMinMaxNoFallback(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 60, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	queries := []struct {
		tail         string
		wantBranches int
		wantRewrites int
	}{
		{`SUCH THAT COUNT(*) = 3 AND AVG(P.calories) <= 900 MAXIMIZE SUM(P.protein)`, 1, 1},
		{`SUCH THAT COUNT(*) = 3 AND MIN(P.protein) >= 5 MAXIMIZE SUM(P.protein)`, 1, 1},
		{`SUCH THAT COUNT(*) = 3 AND MAX(P.calories) <= 950 MAXIMIZE SUM(P.protein)`, 1, 1},
		{`SUCH THAT COUNT(*) = 3 AND (AVG(P.calories) <= 900 OR SUM(P.calories) <= 2000) MAXIMIZE SUM(P.protein)`, 2, 1},
	}
	for _, q := range queries {
		res, err := Evaluate(db, "SELECT PACKAGE(R) AS P FROM recipes R "+q.tail,
			Options{Strategy: SketchRefineStrategy, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", q.tail, err)
		}
		if res.Stats.Strategy != SketchRefineStrategy {
			t.Fatalf("%s: fell back to %v", q.tail, res.Stats.Strategy)
		}
		if res.Stats.SketchLevels < 1 {
			t.Errorf("%s: SketchLevels = %d, want >= 1 (the sketch really ran)", q.tail, res.Stats.SketchLevels)
		}
		if res.Stats.SketchBranches != q.wantBranches {
			t.Errorf("%s: SketchBranches = %d, want %d", q.tail, res.Stats.SketchBranches, q.wantBranches)
		}
		if res.Stats.SketchAtomRewrites != q.wantRewrites {
			t.Errorf("%s: SketchAtomRewrites = %d, want %d", q.tail, res.Stats.SketchAtomRewrites, q.wantRewrites)
		}
		if len(res.Packages) == 0 {
			t.Fatalf("%s: no package", q.tail)
		}
	}
}

// TestSketchRequestedForUnsupportedFallsBack keeps the fallback path
// honest for what the sketch engine still cannot lower: a DNF blow-up
// past the branch cap routes to the exact solver, with a note naming
// the obstruction.
func TestSketchRequestedForUnsupportedFallsBack(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 25, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(db, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT (COUNT(*) = 1 OR COUNT(*) = 2 OR COUNT(*) = 3)
		      AND (SUM(P.calories) >= 0 OR SUM(P.protein) >= 0)
		      AND (SUM(P.fat) >= 0 OR SUM(P.carbs) >= 0)`,
		Options{Strategy: SketchRefineStrategy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Strategy != Solver {
		t.Fatalf("12-branch DNF should fall back to the solver, got %v", res.Stats.Strategy)
	}
	found := false
	for _, n := range res.Stats.Notes {
		if strings.Contains(n, "disjunctive branches") {
			found = true
		}
	}
	if !found {
		t.Errorf("fallback note should explain the DNF cap, got %v", res.Stats.Notes)
	}
	if len(res.Packages) == 0 {
		t.Fatal("fallback returned no package")
	}
}

package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/minidb"
)

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{
		Auto: "auto", BruteForceStrategy: "brute-force", PrunedEnum: "pruned-enum",
		LocalSearchStrategy: "local-search", Solver: "solver",
	}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), s)
		}
	}
	if !strings.Contains(Strategy(42).String(), "42") {
		t.Error("unknown strategy should render its number")
	}
}

func TestAutoPicksLocalSearchForLargeNonlinear(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 120, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	// A non-linear constraint over far more candidates than the exact
	// enumeration threshold: Auto must fall back to local search.
	res, err := Evaluate(db, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) * SUM(P.protein) >= 100000
		      AND SUM(P.calories) <= 3000
		MAXIMIZE SUM(P.protein)`, Options{Seed: 3, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Strategy != LocalSearchStrategy {
		t.Errorf("auto chose %v for large non-linear query", res.Stats.Strategy)
	}
	// any returned package must genuinely satisfy the non-linear formula
	for _, p := range res.Packages {
		cal, _ := p.AggValues["SUM(R.calories)"].AsFloat()
		prot, _ := p.AggValues["SUM(R.protein)"].AsFloat()
		if cal*prot < 100000-1e-6 || cal > 3000 {
			t.Errorf("non-linear constraint violated: %g * %g, cal %g", cal, prot, cal)
		}
	}
}

func TestTimeoutIsRespected(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 26, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	// A brute-force run with a tiny budget must return promptly and be
	// flagged inexact.
	res, err := Evaluate(db, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 500 AND 5000
		MAXIMIZE SUM(P.protein)`, Options{Strategy: BruteForceStrategy, Timeout: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Exact {
		t.Error("budget-starved brute force must not claim exactness")
	}
}

// Package engine is PackageBuilder's core: it parses PaQL, folds scalar
// sub-queries against the DBMS, computes the candidate tuples (base
// constraints), derives §4.1 cardinality bounds, chooses an evaluation
// strategy ("PACKAGEBUILDER heuristically combines all of them"), and
// returns validated packages with their aggregate values.
//
// Strategies:
//   - Solver: translate to MILP and branch-and-bound (§7); multiple
//     packages via exclusion cuts (§5 "solver limitations"); optionally
//     warm-started with a local-search incumbent (hybrid).
//   - PrunedEnum: exact enumeration within cardinality bounds (§4.1).
//   - LocalSearchStrategy: SQL-join k-replacement hill climbing (§4.2).
//   - BruteForceStrategy: the 2^n baseline, for ground truth.
//   - SketchRefineStrategy: the follow-up papers' partition-based
//     SketchRefine (internal/sketch) — solve a small sketch over
//     partition representatives, then refine per partition; heuristic
//     but fast at large n.
//   - Auto: pick by linearity and scale.
package core

import (
	"context"
	"fmt"
	"math/big"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/lifecycle"
	"repro/internal/minidb"
	"repro/internal/paql"
	"repro/internal/plan"
	"repro/internal/prune"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/sketch"
	"repro/internal/value"
)

// Strategy selects how a package query is evaluated.
type Strategy int

const (
	// Auto lets the engine choose (linearity- and scale-driven).
	Auto Strategy = iota
	// BruteForceStrategy enumerates every multiplicity vector.
	BruteForceStrategy
	// PrunedEnum enumerates within §4.1 cardinality bounds.
	PrunedEnum
	// LocalSearchStrategy is the §4.2 SQL-driven heuristic.
	LocalSearchStrategy
	// Solver translates to a MILP and runs branch-and-bound.
	Solver
	// SketchRefineStrategy partitions the candidates, solves a sketch
	// MILP over partition representatives, and refines per partition
	// (the PVLDB 2016 follow-up's SketchRefine).
	SketchRefineStrategy
)

// String returns the strategy's CLI/API name (e.g. "sketch-refine").
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case BruteForceStrategy:
		return "brute-force"
	case PrunedEnum:
		return "pruned-enum"
	case LocalSearchStrategy:
		return "local-search"
	case Solver:
		return "solver"
	case SketchRefineStrategy:
		return "sketch-refine"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy resolves a strategy name (as used by the CLIs and the
// HTTP API) to its Strategy value.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "auto":
		return Auto, nil
	case "brute-force", "brute":
		return BruteForceStrategy, nil
	case "pruned-enum", "pruned":
		return PrunedEnum, nil
	case "local-search", "local":
		return LocalSearchStrategy, nil
	case "solver", "milp":
		return Solver, nil
	case "sketch-refine", "sketch":
		return SketchRefineStrategy, nil
	}
	return Auto, fmt.Errorf("core: unknown strategy %q (auto, solver, sketch-refine, pruned-enum, local-search, brute-force)", name)
}

// Options tunes evaluation.
type Options struct {
	Strategy Strategy
	// Planner overrides the cost-based planner Run consults for
	// strategy and knob defaults (nil = a planner with the stock cost
	// model). Explicitly-set options always win over its decisions.
	Planner *plan.Planner
	// Catalog, when set, feeds the planner per-table statistics (row
	// counts, write rate, delta fraction). Without one the planner
	// sees a minimal row-count-only snapshot.
	Catalog *catalog.Catalog
	// Limit overrides the query's LIMIT (number of packages).
	Limit int
	// Timeout bounds the whole evaluation. Under RunContext it is sugar
	// for a derived context deadline (plus a short grace) and doubles as
	// the soft budget the strategies check so best-effort results beat
	// hard cancellation.
	Timeout time.Duration
	// MemoryBudget, when positive, caps the planner-predicted peak
	// working set (plan.CostModel.MemoryEstimate) a query may allocate:
	// evaluation refuses with lifecycle.ErrBudgetExceeded before
	// dispatching a strategy whose estimate exceeds it.
	MemoryBudget int64
	// Seed drives the randomized strategies.
	Seed int64
	// Restarts and MaxK tune local search.
	Restarts int
	MaxK     int
	// Diverse returns a diverse package set (max-min Jaccard greedy)
	// instead of the top-k by objective (§5 "diverse package results").
	Diverse bool
	// OverFetch multiplies the number of packages gathered before
	// diverse selection (default 4).
	OverFetch int
	// SolverNodes caps branch-and-bound nodes (0 = default).
	SolverNodes int
	// NoHybridSeed disables warm-starting the solver with a
	// local-search incumbent (ablation).
	NoHybridSeed bool
	// DisablePruning turns off §4.1 bounds in enumeration (ablation).
	DisablePruning bool
	// ComputeSpace fills Stats.SpacePruned/SpaceFull (costs a few
	// binomials; on by default for n ≤ 4096).
	ComputeSpace bool
	// SketchPartitionSize bounds SketchRefine partitions (τ; 0 =
	// default 64).
	SketchPartitionSize int
	// SketchPartitions targets a SketchRefine partition count instead;
	// the tighter of the two bounds wins.
	SketchPartitions int
	// SketchDepth is the SketchRefine partition-tree depth: 0 or 1 =
	// flat, ≥ 2 recurses the sketch over partitions of partitions so
	// the top-level MILP stays tiny at any scale.
	SketchDepth int
	// SketchCache, when set, caches SketchRefine partition trees across
	// evaluations (keyed by a fingerprint of the candidate rows); a hit
	// skips the offline partitioning step. System and pbserver share
	// one cache across queries.
	SketchCache *sketch.Cache
	// SketchNoCache suppresses the engine-level shared cache injection
	// (ablation / -sketch-cache=false).
	SketchNoCache bool
	// SketchMemo, when set, memoizes candidate fingerprints per
	// (table, WHERE) across evaluations: warm sketch queries over an
	// unchanged table perform zero candidate hashing, and after writes
	// only the delta is hashed. System and pbserver share one memo
	// across queries, next to the partition-tree cache.
	SketchMemo *FingerprintMemo
	// SketchIncremental enables incremental partition-tree maintenance
	// (requires SketchMemo): after writes, the cached tree for the
	// pre-write data is patched in place via sketch.ApplyDelta —
	// deletions tombstoned, insertions routed to their leaves,
	// overgrown leaves split, representatives and envelopes refreshed
	// bottom-up — instead of rebuilt from scratch, and the persisted
	// tree is re-saved atomically.
	SketchIncremental bool
	// SketchIncrementalSet marks SketchIncremental as explicitly chosen
	// by the user: the planner's patch-vs-rebuild decision then leaves
	// it alone and records the value as forced. Callers that default
	// the knob (packagebuilder, pbserver's server-wide flag) leave this
	// false so the planner stays in charge.
	SketchIncrementalSet bool
	// SketchParallelism caps the workers SketchRefine's offline
	// partitioning and per-partition solves fan out across: 0 = one per
	// CPU, 1 = fully serial. Results are identical at every setting.
	SketchParallelism int
	// SketchPersistDir, when non-empty, persists SketchRefine partition
	// trees to this directory as an on-disk tier under the in-memory
	// cache: trees are saved after every build and loaded on a cache
	// miss, so a cold start (new process, empty cache) skips the
	// offline partitioning step too. Stale or corrupted files fall back
	// to a rebuild.
	SketchPersistDir string
	// Require lists candidate indexes (positions in the candidate set,
	// not base-table row ids) that must appear in every package —
	// adaptive exploration (§3.3) pins kept tuples through this.
	Require []int
	// GapTolerance, when positive, switches SketchRefine into its
	// anytime mode: every evaluation carries a certified dual bound
	// (Stats.BoundValue), and once a feasible package is provably
	// within this relative gap of the bound, the remaining DNF branch
	// descents are skipped — early exit with a proof. Zero keeps the
	// certified interval without changing what is evaluated. The knob
	// is threaded to the planner as forced, so EXPLAIN shows it on the
	// bound decision.
	GapTolerance float64
}

// Package is one evaluated package.
type Package struct {
	Mult         []int              // multiplicity per candidate
	CandidateIDs []int              // base-table row ids per candidate
	Rows         []schema.Row       // materialized tuples (repeated per multiplicity)
	Objective    float64            // objective value (0 when none)
	AggValues    map[string]value.V // each aggregate's value, keyed by its PaQL text
}

// TupleIDs expands to base-table row ids with multiplicity.
func (p *Package) TupleIDs() []int {
	var out []int
	for i, m := range p.Mult {
		for k := 0; k < m; k++ {
			out = append(out, p.CandidateIDs[i])
		}
	}
	return out
}

// Size is the number of tuples in the package.
func (p *Package) Size() int {
	n := 0
	for _, m := range p.Mult {
		n += m
	}
	return n
}

// Stats describes how an evaluation went.
type Stats struct {
	Candidates         int          // tuples passing base constraints
	Bounds             prune.Bounds // §4.1 cardinality bounds
	SpacePruned        *big.Int     // Σ C(n,k) within bounds (nil unless computed)
	SpaceFull          *big.Int     // 2^n (nil unless computed)
	Linear             bool         // MILP-translatable
	Strategy           Strategy     // strategy actually used
	Exact              bool         // result is provably optimal/complete
	Nodes              int64        // search nodes or MILP B&B nodes
	LPIters            int          // simplex iterations (solver)
	SQLQueries         int          // replacement queries (local search)
	Restarts           int          // local-search restarts
	Partitions         int          // leaf partitions built (sketch-refine)
	Repaired           int          // partitions greedily repaired (sketch-refine)
	SketchLevels       int          // partition-tree levels used (sketch-refine; 1 = flat)
	SketchTopVars      int          // variables in the top-level sketch MILP (sketch-refine)
	SketchBranches     int          // DNF branches descended (sketch-refine; 1 = conjunctive)
	SketchAtomRewrites int          // AVG/MIN/MAX atoms rewritten into sketchable rows (sketch-refine)
	SketchCacheHit     bool         // partition tree served from the shared cache
	SketchTreeLoaded   bool         // partition tree loaded from the on-disk store
	SketchTreePatched  bool         // stale partition tree patched in place (incremental maintenance)
	SketchDeltaApplied int          // tuples the tree patch inserted plus deleted
	SketchCoalesced    bool         // tree acquisition joined another query's in-flight build
	SketchWorkers      int          // workers the sketch-refine parallel phases used
	MemoryEstimate     int64        // planner-predicted peak working set, bytes
	BoundValue         float64      // certified dual bound on the objective (valid when Certified)
	Gap                float64      // certified relative gap |objective − BoundValue| / max(1, |objective|)
	Certified          bool         // BoundValue provably brackets the exact optimum (internal/bound)
	BoundStage         string       // deepest bound-pipeline stage that produced BoundValue (raw-lp, tree-lp, tree-lp+tighten, descend-1, milp-dual)
	BoundTightenRounds int          // Lagrangian tightening rounds the bound pipeline spent
	Elapsed            time.Duration
	Notes              []string // strategy decisions, fallbacks, caveats
	// Degraded reports that at least one optional subsystem (cache,
	// disk store, delta patch, bound pass, catalog, …) failed during
	// this evaluation and the engine continued one rung down the
	// degradation ladder instead of failing the query.
	Degraded bool
	// DegradedReasons lists the rungs taken, one "subsystem: detail"
	// entry per degradation event, in the order they happened.
	DegradedReasons []string
	// Plan is the cost-based planner's decision trail for this
	// evaluation (strategy, knobs, costs, reasons). Always set by Run;
	// EXPLAIN surfaces render it.
	Plan *plan.Plan
}

// Result is the evaluation outcome.
type Result struct {
	Query    *paql.Query
	Packages []*Package
	Stats    Stats
}

// Prepared is a query bound to its candidates, ready to run (possibly
// multiple times with different options — the bench harness relies on
// this).
type Prepared struct {
	DB       *minidb.DB
	Query    *paql.Query
	Analysis *paql.Analysis
	Table    *minidb.Table
	Instance *search.Instance
	// SketchCache is the default partition-tree cache for Run when the
	// options carry none (System.Prepare points it at the engine-level
	// shared cache, so repeated prep.Run calls skip re-partitioning).
	SketchCache *sketch.Cache
	// SketchMemo is the default fingerprint memo for Run when the
	// options carry none (System.Prepare points it at the engine-level
	// shared memo, so repeated prep.Run calls skip candidate rehashing).
	SketchMemo *FingerprintMemo
	// TableVersion is the table's write version at Prepare time; the
	// fingerprint memo keys its candidate snapshot on it.
	TableVersion uint64
}

// Prepare parses, folds sub-queries, analyzes, and computes candidates.
func Prepare(db *minidb.DB, queryText string) (*Prepared, error) {
	return PrepareContext(context.Background(), db, queryText)
}

// PrepareContext is Prepare under a context: the candidate scan — the
// only phase linear in the table — checks for cancellation periodically
// and returns lifecycle.ErrCanceled instead of finishing the scan.
func PrepareContext(ctx context.Context, db *minidb.DB, queryText string) (*Prepared, error) {
	q, err := paql.Parse(queryText)
	if err != nil {
		return nil, err
	}
	return PrepareQueryContext(ctx, db, q)
}

// PrepareQuery is Prepare for an already-parsed query.
func PrepareQuery(db *minidb.DB, q *paql.Query) (*Prepared, error) {
	return PrepareQueryContext(context.Background(), db, q)
}

// PrepareQueryContext is PrepareContext for an already-parsed query.
func PrepareQueryContext(ctx context.Context, db *minidb.DB, q *paql.Query) (*Prepared, error) {
	table, ok := db.Table(q.Table)
	if !ok {
		return nil, fmt.Errorf("engine: relation %q does not exist", q.Table)
	}
	if err := foldSubqueries(db, q); err != nil {
		return nil, err
	}
	analysis, err := paql.Analyze(q, table.Schema)
	if err != nil {
		return nil, err
	}
	// Candidate tuples: those satisfying the base constraints (WHERE).
	var rows []schema.Row
	var ids []int
	for rid, row := range table.Rows {
		if rid&8191 == 0 {
			if err := lifecycle.ContextErr(ctx); err != nil {
				return nil, err
			}
		}
		if q.Where != nil {
			ok, err := expr.EvalBool(q.Where, row)
			if err != nil {
				return nil, fmt.Errorf("engine: base constraint: %w", err)
			}
			if !ok {
				continue
			}
		}
		rows = append(rows, row)
		ids = append(ids, rid)
	}
	inst, err := search.NewInstance(analysis, rows, ids)
	if err != nil {
		return nil, err
	}
	return &Prepared{DB: db, Query: q, Analysis: analysis, Table: table, Instance: inst,
		TableVersion: table.Version()}, nil
}

// foldSubqueries evaluates scalar SQL sub-queries in SUCH THAT and the
// objective against the DBMS and replaces them with constants.
func foldSubqueries(db *minidb.DB, q *paql.Query) error {
	var firstErr error
	fold := func(e expr.Expr) expr.Expr {
		if e == nil {
			return nil
		}
		return expr.Transform(e, func(n expr.Expr) expr.Expr {
			sq, ok := n.(*paql.Subquery)
			if !ok {
				return nil
			}
			res, err := db.Query(sq.SQL)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("engine: sub-query (%s): %w", sq.SQL, err)
				}
				return &expr.Const{Val: value.Null()}
			}
			if res.Schema.Len() != 1 || len(res.Rows) > 1 {
				if firstErr == nil {
					firstErr = fmt.Errorf("engine: sub-query (%s) must return one scalar", sq.SQL)
				}
				return &expr.Const{Val: value.Null()}
			}
			if len(res.Rows) == 0 {
				return &expr.Const{Val: value.Null()}
			}
			return &expr.Const{Val: res.Rows[0][0]}
		})
	}
	q.SuchThat = fold(q.SuchThat)
	if q.Objective != nil {
		q.Objective.Expr = fold(q.Objective.Expr)
	}
	return firstErr
}

// Evaluate runs a PaQL query end to end (legacy contract; see Run).
func Evaluate(db *minidb.DB, queryText string, opts Options) (*Result, error) {
	prep, err := Prepare(db, queryText)
	if err != nil {
		return nil, err
	}
	return prep.Run(opts)
}

// EvaluateContext runs a PaQL query end to end under a context, with
// RunContext's typed-error contract (lifecycle.ErrInfeasible,
// ErrCanceled, ErrBudgetExceeded — all errors.Is-able).
func EvaluateContext(ctx context.Context, db *minidb.DB, queryText string, opts Options) (*Result, error) {
	prep, err := PrepareContext(ctx, db, queryText)
	if err != nil {
		return nil, err
	}
	return prep.RunContext(ctx, opts)
}

// limit resolves the number of packages to return.
func (p *Prepared) limit(opts Options) int {
	if opts.Limit > 0 {
		return opts.Limit
	}
	if p.Query.Limit > 0 {
		return p.Query.Limit
	}
	return 1
}

// buildPackage materializes and validates one package.
func (p *Prepared) buildPackage(mult []int) (*Package, error) {
	inst := p.Instance
	rows := inst.Materialize(mult)
	ok, err := paql.Satisfies(p.Query.SuchThat, rows)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("engine: internal error: strategy returned an invalid package")
	}
	obj, err := paql.ObjectiveValue(p.Query.Objective, rows)
	if err != nil && p.Query.Objective != nil {
		return nil, err
	}
	aggs := map[string]value.V{}
	for _, a := range p.Analysis.Aggs {
		v, err := paql.EvalAgg(a, rows)
		if err != nil {
			return nil, err
		}
		aggs[a.String()] = v
	}
	return &Package{
		Mult:         mult,
		CandidateIDs: inst.IDs,
		Rows:         rows,
		Objective:    obj,
		AggValues:    aggs,
	}, nil
}

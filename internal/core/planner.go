package core

import (
	"runtime"

	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/plan"
	"repro/internal/sketch"
)

// This file is the bridge between the engine and internal/plan: it
// snapshots a Prepared query plus its Options into a plan.Input (table
// statistics from the catalog, atom mix from the query planner, forced
// knobs from explicit options, cache state from a live probe) and maps
// the resulting plan back onto the engine's Strategy and sketch knobs.
// All strategy heuristics formerly in chooseStrategy live in
// internal/plan now; core only translates.

// Plan runs the cost-based planner over the prepared query under the
// given options and returns the decision trail — without executing
// anything. EXPLAIN on every surface bottoms out here.
func (p *Prepared) Plan(opts Options) *plan.Plan {
	planner := opts.Planner
	if planner == nil {
		planner = plan.NewPlanner()
	}
	return planner.Plan(p.planInput(opts))
}

// planInput snapshots everything the execution planner looks at.
func (p *Prepared) planInput(opts Options) plan.Input {
	in := plan.Input{
		N:       len(p.Instance.Rows),
		MaxMult: p.Instance.MaxMult,
		Mix:     plan.AnalyzeAtoms(p.Analysis, sketch.Applicable(p.Instance)),
		Procs:   runtime.GOMAXPROCS(0),
		Forced:  p.forcedKnobs(opts),
		Probe:   p.cacheProbe(opts),
	}
	if p.Query != nil {
		in.Query = p.Query.Raw
	}
	in.Table = p.tableStats(opts)
	return in
}

// tableStats resolves the catalog snapshot for the queried table,
// falling back to a minimal row-count-only view when the evaluation
// runs without a catalog.
func (p *Prepared) tableStats(opts Options) catalog.TableStats {
	if p.Table == nil {
		return catalog.TableStats{Rows: len(p.Instance.Rows)}
	}
	if opts.Catalog != nil {
		if ts, ok := opts.Catalog.Stats(p.Table.Name); ok {
			return ts
		}
	}
	return catalog.TableStats{
		Table:   p.Table.Name,
		Rows:    len(p.Table.Rows),
		Version: p.TableVersion,
	}
}

// forcedKnobs lifts explicitly-set options into the plan's forced set,
// so the planner echoes them back marked "forced" instead of deciding.
func (p *Prepared) forcedKnobs(opts Options) plan.Forced {
	f := plan.Forced{
		Depth:        opts.SketchDepth,
		Parallelism:  opts.SketchParallelism,
		GapTolerance: opts.GapTolerance,
	}
	if opts.Strategy != Auto {
		f.Strategy = opts.Strategy.String()
	}
	if opts.SketchPartitionSize > 0 || opts.SketchPartitions > 0 {
		f.Tau = sketch.Options{
			MaxPartitionSize: opts.SketchPartitionSize,
			NumPartitions:    opts.SketchPartitions,
		}.EffectiveTau(len(p.Instance.Rows))
	}
	if opts.SketchIncrementalSet {
		inc := opts.SketchIncremental
		f.Incremental = &inc
	}
	return f
}

// cacheProbe builds the planner's cache-state probe: given the (τ,
// depth) the planner intends, report whether a tree for the resulting
// key is warm in memory, persisted on disk, or patchable from lineage.
// Nil (assume cold) when no cache, store, or memo is in play — without
// a memoized fingerprint the probe would cost an O(n) hash, which a
// plan must never do.
func (p *Prepared) cacheProbe(opts Options) func(tau, depth int) plan.CacheState {
	cache := opts.SketchCache
	if cache == nil {
		cache = p.SketchCache
	}
	if opts.SketchNoCache {
		cache = nil
	}
	memo := opts.SketchMemo
	if memo == nil {
		memo = p.SketchMemo
	}
	if memo == nil || (cache == nil && opts.SketchPersistDir == "") {
		return nil
	}
	probe := func(tau, depth int) plan.CacheState {
		var cs plan.CacheState
		pr := memo.Probe(p)
		if !pr.Known {
			return cs
		}
		fp := pr.Fingerprint
		key := sketch.KeyFor(p.Instance, sketch.Options{
			MaxPartitionSize: tau,
			Depth:            depth,
			Seed:             opts.Seed,
			Fingerprint:      &fp,
		})
		var store *sketch.Store
		if opts.SketchPersistDir != "" {
			store = sketch.NewStore(opts.SketchPersistDir)
		}
		if cache != nil {
			if _, ok := cache.Peek(key); ok {
				cs.InCache = true
				return cs
			}
		}
		if store != nil && store.Contains(key) {
			cs.OnDisk = true
			return cs
		}
		if pr.Patchable {
			base := key
			base.Fingerprint = pr.Base
			warmBase := false
			if cache != nil {
				_, warmBase = cache.Peek(base)
			}
			if !warmBase && store != nil {
				warmBase = store.Contains(base)
			}
			if warmBase {
				cs.Patchable = true
				cs.PatchFrac = pr.DeltaFrac
			}
		}
		return cs
	}
	// Probe rung of the degradation ladder: a probe that fails (or
	// panics) yields "assume cold" — the plan degrades to predicting a
	// full build, the query itself is untouched.
	return func(tau, depth int) (cs plan.CacheState) {
		defer func() {
			if recover() != nil {
				cs = plan.CacheState{ProbeFailed: true}
			}
		}()
		if fault.Check("plan.probe") != nil {
			return plan.CacheState{ProbeFailed: true}
		}
		return probe(tau, depth)
	}
}

// applyPlan maps a plan onto the options: the strategy when the user
// left it on Auto, and each sketch knob the user did not set
// explicitly. Forced values pass through untouched — the plan already
// echoes them.
func applyPlan(opts *Options, qp *plan.Plan) (Strategy, error) {
	strat := opts.Strategy
	if strat == Auto {
		var err error
		strat, err = ParseStrategy(qp.Strategy)
		if err != nil {
			return Auto, err
		}
	}
	if qp.Strategy == plan.StrategySketch || strat == SketchRefineStrategy {
		if opts.SketchPartitionSize == 0 && opts.SketchPartitions == 0 && qp.Tau > 0 {
			opts.SketchPartitionSize = qp.Tau
		}
		if opts.SketchDepth == 0 && qp.Depth > 0 {
			opts.SketchDepth = qp.Depth
		}
		if opts.SketchParallelism == 0 && qp.Parallelism > 0 {
			opts.SketchParallelism = qp.Parallelism
		}
		if !opts.SketchIncrementalSet {
			opts.SketchIncremental = qp.Incremental
		}
	}
	return strat, nil
}

package core

import (
	"fmt"
	"sync"

	"repro/internal/minidb"
	"repro/internal/paql"
	"repro/internal/sketch"
)

// FingerprintMemo makes the SketchRefine candidate fingerprint
// incremental. The sketch cache keys on a hash of every candidate
// cell, so a naive evaluation pays an O(n) rehash even on a fully warm
// cache. The memo stores, per (table, WHERE) pair, the table version
// it last saw together with one RowHash per candidate; on the next
// evaluation it asks minidb for the delta since that version and:
//
//   - unchanged table → the memoized fingerprint is returned outright,
//     with zero candidate hashing;
//   - small write batch → only the appended rows are hashed, deleted
//     candidates are dropped from the cached hash list, and the
//     fingerprint is recombined from per-row hashes (never re-reading
//     a cell) — along with a sketch.PatchSpec relating the new
//     candidates to the old fingerprint, the lineage the sketch engine
//     uses to patch its cached partition tree in place;
//   - anything the delta log cannot explain → full rehash, as before.
//
// Safe for concurrent use. Share one memo per System/server, next to
// the partition-tree cache.
type FingerprintMemo struct {
	mu         sync.Mutex
	entries    map[memoKey]*memoEntry
	lookups    int64
	hits       int64
	rowsHashed int64
}

// memoMaxEntries bounds the entry count and memoMaxRows the total
// candidate rows retained across entries (each candidate costs two
// machine words — an id and a row hash — so the row bound caps memo
// memory at ~64 MB regardless of how many distinct queries hit
// million-row tables).
const (
	memoMaxEntries = 32
	memoMaxRows    = 4 << 20
)

// memoKey identifies a snapshot by table NAME, not pointer: keying on
// the pointer would pin a dropped or replaced table (and every row it
// holds) in the map until eviction. The entry keeps the pointer only
// as an identity check — a recreated table under the same name fails
// it and overwrites the entry, releasing the old rows.
type memoKey struct {
	table string
	where string
}

type memoEntry struct {
	table     *minidb.Table // identity check: the table the snapshot describes
	version   uint64        // table version the snapshot was taken at
	ids       []int         // candidate row ids (positions) at that version
	rowHashes []uint64      // RowHash per candidate, parallel to ids
	fp        uint64        // CombineRowHashes(rowHashes)
}

// NewFingerprintMemo returns an empty memo.
func NewFingerprintMemo() *FingerprintMemo {
	return &FingerprintMemo{entries: map[memoKey]*memoEntry{}}
}

// FingerprintMemoStats snapshots memo effectiveness: Hits counts
// evaluations that returned a fingerprint with zero hashing, and
// RowsHashed the candidate rows whose cells were actually hashed
// across all lookups (the quantity incremental maintenance drives
// toward the write volume, away from n per query).
type FingerprintMemoStats struct {
	Lookups    int64
	Hits       int64
	RowsHashed int64
}

// Stats snapshots the lookup/hit/hash counters.
func (m *FingerprintMemo) Stats() FingerprintMemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return FingerprintMemoStats{Lookups: m.lookups, Hits: m.hits, RowsHashed: m.rowsHashed}
}

// Advance returns the fingerprint of prep's candidate rows, hashing
// only what changed since the memo last saw this (table, WHERE) pair,
// and updates the snapshot to the current version. When the candidates
// evolved from the previous snapshot by a log-explained delta, the
// returned PatchSpec carries the lineage for in-place partition-tree
// patching (nil when nothing changed or no lineage exists).
func (m *FingerprintMemo) Advance(prep *Prepared) (uint64, *sketch.PatchSpec) {
	if prep.Table == nil {
		return sketch.Fingerprint(prep.Instance.Rows), nil
	}
	key := memoKey{table: prep.Table.Name, where: whereKey(prep.Query)}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lookups++
	if e, ok := m.entries[key]; ok && e.table == prep.Table {
		if e.version == prep.TableVersion && len(e.ids) == len(prep.Instance.IDs) {
			m.hits++
			return e.fp, nil
		}
		if fp, patch, ok := m.step(e, prep); ok {
			return fp, patch
		}
	}
	// Cold, aged-out, or inexplicable: hash every candidate once and
	// snapshot.
	hs := make([]uint64, len(prep.Instance.Rows))
	for i, row := range prep.Instance.Rows {
		hs[i] = sketch.RowHash(row)
	}
	m.rowsHashed += int64(len(hs))
	fp := sketch.CombineRowHashes(hs)
	m.put(key, &memoEntry{table: prep.Table, version: prep.TableVersion,
		ids: prep.Instance.IDs, rowHashes: hs, fp: fp})
	return fp, nil
}

// step advances an existing snapshot by the table's delta log and
// commits the replayed state into the entry. ok is false when the
// delta aged out of the log or the observed candidates contradict the
// replayed delta (the caller falls back to a full rehash).
func (m *FingerprintMemo) step(e *memoEntry, prep *Prepared) (uint64, *sketch.PatchSpec, bool) {
	fp, newHashes, patch, hashed, ok := replayDelta(e, prep)
	if !ok {
		return 0, nil, false
	}
	m.rowsHashed += int64(hashed)
	if patch == nil {
		m.hits++ // writes missed the candidates entirely: still zero-rehash warm
	}
	e.version = prep.TableVersion
	e.ids = prep.Instance.IDs
	e.rowHashes = newHashes
	e.fp = fp
	return fp, patch, true
}

// replayDelta replays the table's delta log over an existing snapshot
// without mutating it: deleted candidates drop out of the hash list,
// appended candidates are the only rows hashed, and the remap tying old
// candidate indexes to new ones becomes the patch spec (nil when the
// candidates are unchanged). ok is false when the delta aged out of the
// log or the observed candidates contradict the replayed delta. Shared
// by step (which commits the result) and Probe (which discards it).
func replayDelta(e *memoEntry, prep *Prepared) (fp uint64, newHashes []uint64, patch *sketch.PatchSpec, hashed int, ok bool) {
	delta, dok := prep.Table.DeltaSince(e.version)
	if !dok || delta.Current != prep.TableVersion {
		return 0, nil, nil, 0, false
	}
	inst := prep.Instance
	remap := make([]int, len(e.ids))
	newHashes = make([]uint64, 0, len(inst.IDs))
	di, surv := 0, 0
	for i, id := range e.ids {
		for di < len(delta.Deleted) && delta.Deleted[di] < id {
			di++
		}
		if di < len(delta.Deleted) && delta.Deleted[di] == id {
			remap[i] = -1
			continue
		}
		// Survivors shift down by the deletions before them; the fresh
		// candidate scan must agree, or the delta model does not apply.
		if surv >= len(inst.IDs) || inst.IDs[surv] != id-di {
			return 0, nil, nil, 0, false
		}
		remap[i] = surv
		newHashes = append(newHashes, e.rowHashes[i])
		surv++
	}
	for k := surv; k < len(inst.IDs); k++ {
		if inst.IDs[k] < delta.AppendedStart {
			return 0, nil, nil, 0, false // a "new" candidate from the base region: not append-only
		}
		newHashes = append(newHashes, sketch.RowHash(inst.Rows[k]))
	}
	hashed = len(inst.IDs) - surv
	fp = sketch.CombineRowHashes(newHashes)
	if fp != e.fp {
		patch = &sketch.PatchSpec{BaseFingerprint: e.fp, Remap: remap}
	}
	return fp, newHashes, patch, hashed, true
}

// ProbeResult is Probe's read-only view of what Advance would return.
type ProbeResult struct {
	// Fingerprint is the candidate fingerprint Advance would resolve.
	Fingerprint uint64
	// Base is the previous snapshot's fingerprint a tree patch would
	// start from (0 when no patch lineage exists).
	Base uint64
	// Patchable reports that a patch spec relating Base to Fingerprint
	// exists.
	Patchable bool
	// DeltaFrac is the changed-candidate fraction (deleted + appended
	// over the current candidate count) behind that patch.
	DeltaFrac float64
	// Known reports the memo could resolve the fingerprint from its
	// snapshot (possibly hashing only the delta); false means Advance
	// would fall back to a full O(n) rehash.
	Known bool
}

// Probe reports the fingerprint and patch lineage Advance would
// resolve, WITHOUT committing the new snapshot, bumping the
// lookup/hit counters, or consuming the patch spec. The planner uses
// it to predict the tree source of a sketch run it has not started —
// the actual run's Advance still sees the same lineage.
func (m *FingerprintMemo) Probe(prep *Prepared) ProbeResult {
	if prep.Table == nil {
		return ProbeResult{}
	}
	key := memoKey{table: prep.Table.Name, where: whereKey(prep.Query)}
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok || e.table != prep.Table {
		return ProbeResult{}
	}
	if e.version == prep.TableVersion && len(e.ids) == len(prep.Instance.IDs) {
		return ProbeResult{Fingerprint: e.fp, Known: true}
	}
	fp, _, patch, _, ok := replayDelta(e, prep)
	if !ok {
		return ProbeResult{}
	}
	pr := ProbeResult{Fingerprint: fp, Known: true}
	if patch != nil {
		deleted := 0
		for _, r := range patch.Remap {
			if r < 0 {
				deleted++
			}
		}
		appended := len(prep.Instance.IDs) - (len(patch.Remap) - deleted)
		pr.Base = e.fp
		pr.Patchable = true
		if n := len(prep.Instance.IDs); n > 0 {
			pr.DeltaFrac = float64(deleted+appended) / float64(n)
		}
	}
	return pr
}

func (m *FingerprintMemo) put(k memoKey, e *memoEntry) {
	m.entries[k] = e
	// Evict arbitrary entries beyond either bound: the memo is a
	// bounded snapshot store, not an LRU — a wrong eviction only costs
	// one rehash. The freshly-inserted entry is spared so the caller's
	// own snapshot always lands.
	for victim := range m.entries {
		if len(m.entries) <= memoMaxEntries && m.retainedRows() <= memoMaxRows {
			break
		}
		if victim == k {
			continue
		}
		delete(m.entries, victim)
	}
}

// retainedRows sums the candidate rows snapshotted across entries.
func (m *FingerprintMemo) retainedRows() int {
	total := 0
	for _, e := range m.entries {
		total += len(e.rowHashes)
	}
	return total
}

// whereKey renders the base predicate into the memo key: candidate
// sets differ per WHERE clause even over one table.
func whereKey(q *paql.Query) string {
	if q == nil || q.Where == nil {
		return ""
	}
	return fmt.Sprintf("%v", q.Where)
}

package core

// DiverseSelect picks k packages from a candidate list maximizing
// pairwise diversity with the classic greedy max-min heuristic:
// start from the first (best-objective) package, then repeatedly add
// the package whose minimum Jaccard distance to the selected set is
// largest. This implements the paper's §5 "diverse package results"
// direction: rather than burying the user in near-identical top
// answers, surface structurally different ones.
func DiverseSelect(mults [][]int, k int) [][]int {
	if k <= 0 || len(mults) <= k {
		return mults
	}
	selected := [][]int{mults[0]}
	used := map[int]bool{0: true}
	for len(selected) < k {
		bestIdx := -1
		bestDist := -1.0
		for i, m := range mults {
			if used[i] {
				continue
			}
			minDist := 2.0
			for _, s := range selected {
				d := JaccardDistance(m, s)
				if d < minDist {
					minDist = d
				}
			}
			if minDist > bestDist {
				bestDist = minDist
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		selected = append(selected, mults[bestIdx])
	}
	return selected
}

// JaccardDistance is 1 − |A∩B|/|A∪B| over multisets of tuples
// (multiplicity-aware: intersection takes per-tuple minima, union
// maxima). Identical packages have distance 0; disjoint ones 1.
func JaccardDistance(a, b []int) float64 {
	inter, union := 0, 0
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		av, bv := 0, 0
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		if av < bv {
			inter += av
			union += bv
		} else {
			inter += bv
			union += av
		}
	}
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// MinPairwiseDistance reports the smallest Jaccard distance among all
// pairs — the quantity the E7 diversity experiment tracks.
func MinPairwiseDistance(mults [][]int) float64 {
	if len(mults) < 2 {
		return 1
	}
	best := 2.0
	for i := 0; i < len(mults); i++ {
		for j := i + 1; j < len(mults); j++ {
			d := JaccardDistance(mults[i], mults[j])
			if d < best {
				best = d
			}
		}
	}
	return best
}

// MeanPairwiseDistance is the average pairwise Jaccard distance.
func MeanPairwiseDistance(mults [][]int) float64 {
	if len(mults) < 2 {
		return 0
	}
	sum, cnt := 0.0, 0
	for i := 0; i < len(mults); i++ {
		for j := i + 1; j < len(mults); j++ {
			sum += JaccardDistance(mults[i], mults[j])
			cnt++
		}
	}
	return sum / float64(cnt)
}

package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bound"
	"repro/internal/fault"
	"repro/internal/lifecycle"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/paql"
	"repro/internal/plan"
	"repro/internal/prune"
	"repro/internal/search"
	"repro/internal/sketch"
	"repro/internal/translate"
)

// timeoutGrace is how far the hard context deadline RunContext derives
// from Options.Timeout trails the soft budget: the solvers' soft
// deadline checks fire first and surrender best-effort results, and the
// hard cancellation is the backstop for any path that ignores them.
const timeoutGrace = 250 * time.Millisecond

// Run evaluates the prepared query under the given options. Strategy
// and sketch-knob defaults come from the cost-based planner
// (internal/plan); explicitly-set options always win. The thresholds
// that used to live here as autoThreshold (22) and sketchAutoThreshold
// (4096) are plan.DefaultCostModel's ExactEnumMax and SketchThreshold
// now.
//
// Run is the legacy surface: it evaluates under context.Background()
// and keeps the original no-typed-errors contract — a provably
// infeasible query returns an empty Result with explanatory notes and a
// nil error. New callers should use RunContext, which distinguishes
// infeasible, canceled, and over-budget outcomes as errors.Is-able
// lifecycle errors.
func (p *Prepared) Run(opts Options) (*Result, error) {
	res, err := p.run(context.Background(), opts)
	if err != nil && errors.Is(err, lifecycle.ErrInfeasible) {
		// Legacy contract: infeasibility is an answer, not an error.
		return res, nil
	}
	return res, err
}

// RunContext evaluates the prepared query under a context. The context
// is checked cooperatively throughout — candidate scans, enumeration,
// every MILP branch-and-bound node and simplex iteration, partition
// builds, sketch descents, and refine waves — so cancellation returns
// promptly even mid-solve over millions of candidates, with partial
// work discarded and shared tree caches left consistent.
//
// Outcomes map onto the lifecycle error taxonomy:
//
//   - lifecycle.ErrInfeasible: the query provably has no package
//     (contradictory bounds, or an exact strategy completed empty). The
//     Result still carries the plan and stats. A heuristic strategy
//     finding nothing is NOT infeasible: that returns an empty Result
//     with a note and a nil error.
//   - lifecycle.ErrCanceled: the context was canceled. An expired
//     deadline that still produced packages instead returns them with a
//     note — Options.Timeout and a context deadline both act as soft
//     budgets first (best incumbent wins over an error), with hard
//     cancellation as the backstop.
//   - lifecycle.ErrBudgetExceeded: the planner's predicted working set
//     exceeds Options.MemoryBudget; nothing was executed.
//
// Options.Timeout is sugar for a derived context deadline: RunContext
// bounds the context at Timeout plus a short grace and passes Timeout
// down as the soft budget; symmetrically, a context deadline with no
// Timeout set becomes the soft budget.
func (p *Prepared) RunContext(ctx context.Context, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d, ok := ctx.Deadline(); ok {
		if soft := time.Until(d) - timeoutGrace; soft > 0 && (opts.Timeout <= 0 || soft < opts.Timeout) {
			opts.Timeout = soft
		}
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout+timeoutGrace)
		defer cancel()
	}
	return p.run(ctx, opts)
}

// run is the shared evaluation body behind Run and RunContext. It
// returns typed lifecycle errors; the legacy wrapper downgrades the
// ones its contract predates.
func (p *Prepared) run(ctx context.Context, opts Options) (res *Result, err error) {
	// Last rung of the degradation ladder: a panic anywhere in the
	// solve becomes a typed lifecycle.ErrInternal instead of killing
	// the process, so admission slots drain and the caller sees one
	// failed query, not a crashed server.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, lifecycle.Internal(fmt.Errorf("panic: %v", r))
		}
	}()
	if ferr := fault.Check("core.solve"); ferr != nil {
		return nil, lifecycle.Internal(ferr)
	}
	start := time.Now()
	if err := lifecycle.ContextErr(ctx); err != nil {
		return nil, err
	}
	inst := p.Instance
	res = &Result{Query: p.Query}
	res.Stats.Candidates = len(inst.Rows)
	res.Stats.Bounds = inst.Bounds
	res.Stats.Linear = p.Analysis.Linear
	limit := p.limit(opts)
	fetch := limit
	if opts.Diverse {
		over := opts.OverFetch
		if over <= 0 {
			over = 4
		}
		fetch = limit * over
	}
	cost := plan.DefaultCostModel()
	if opts.Planner != nil {
		cost = opts.Planner.Cost
	}
	if opts.ComputeSpace || len(inst.Rows) <= cost.SketchThreshold {
		pr, full := prune.SpaceSize(len(inst.Rows), inst.Bounds)
		res.Stats.SpacePruned, res.Stats.SpaceFull = pr, full
	}

	// Plan first: the trail is reported even when the bounds check below
	// exits early, so EXPLAIN always has something to show.
	qplan := p.Plan(opts)
	res.Stats.Plan = qplan
	res.Stats.MemoryEstimate = qplan.MemoryBytes

	// Provably-empty space: exact empty answer.
	if inst.Bounds.IsInfeasible() {
		res.Stats.Strategy = PrunedEnum
		res.Stats.Exact = true
		res.Stats.Notes = append(res.Stats.Notes, "cardinality bounds are contradictory; no package can satisfy the query")
		res.Stats.Elapsed = time.Since(start)
		return res, lifecycle.Infeasible("cardinality bounds are contradictory")
	}

	strat, err := applyPlan(&opts, qplan)
	if err != nil {
		return nil, err
	}
	if opts.Strategy == Auto {
		if d := qplan.Decision("strategy"); d != nil {
			res.Stats.Notes = append(res.Stats.Notes, fmt.Sprintf("planner: %s (%s)", d.Value, d.Reason))
		}
	}
	if strat == Solver && !p.Analysis.Linear {
		res.Stats.Notes = append(res.Stats.Notes,
			fmt.Sprintf("solver unavailable (non-linear: %v); falling back to search", p.Analysis.NonlinearReasons))
		if len(inst.Rows) <= cost.ExactEnumMax {
			strat = PrunedEnum
		} else {
			strat = LocalSearchStrategy
		}
	}
	if strat == SketchRefineStrategy {
		if err := sketch.Applicable(inst); err != nil {
			res.Stats.Notes = append(res.Stats.Notes,
				fmt.Sprintf("sketch-refine unavailable (%v); falling back", err))
			switch {
			case p.Analysis.Linear:
				strat = Solver
			case len(inst.Rows) <= cost.ExactEnumMax:
				strat = PrunedEnum
			default:
				strat = LocalSearchStrategy
			}
		}
	}
	res.Stats.Strategy = strat

	// EXPLAIN: report the plan without executing anything.
	if p.Query != nil && p.Query.Explain {
		res.Stats.Notes = append(res.Stats.Notes, "EXPLAIN: plan only; query not executed")
		res.Stats.Elapsed = time.Since(start)
		return res, nil
	}

	// Admission by memory budget: refuse before allocating anything when
	// the planner's working-set prediction exceeds the per-query budget.
	if opts.MemoryBudget > 0 && qplan.MemoryBytes > opts.MemoryBudget {
		res.Stats.Elapsed = time.Since(start)
		return res, lifecycle.BudgetExceeded(qplan.MemoryBytes, opts.MemoryBudget)
	}

	var mults [][]int
	switch strat {
	case BruteForceStrategy:
		mults, err = p.runEnum(ctx, res, opts, fetch, true)
	case PrunedEnum:
		mults, err = p.runEnum(ctx, res, opts, fetch, false)
	case LocalSearchStrategy:
		mults, err = p.runLocal(ctx, res, opts, fetch)
	case Solver:
		mults, err = p.runSolver(ctx, res, opts, fetch)
	case SketchRefineStrategy:
		mults, err = p.runSketch(ctx, res, opts, fetch)
	default:
		err = fmt.Errorf("engine: unknown strategy %v", strat)
	}
	if err != nil {
		return nil, err
	}

	// Cancellation beats partial answers for an explicitly canceled
	// context: the caller walked away, so partial work is discarded. A
	// deadline is softer — packages computed before it fired are still
	// the answer (see RunContext); only an empty-handed deadline is an
	// error.
	if cerr := ctx.Err(); cerr != nil {
		if errors.Is(cerr, context.Canceled) || len(mults) == 0 {
			return nil, lifecycle.Canceled(cerr)
		}
		res.Stats.Notes = append(res.Stats.Notes, "deadline exceeded; best-effort packages returned")
	}

	// Provable infeasibility: an exact strategy ran to completion and
	// found nothing. Heuristic strategies (sketch, local search) leave
	// Exact false, so their empty answers stay answers, not verdicts.
	if len(mults) == 0 && res.Stats.Exact {
		res.Stats.Elapsed = time.Since(start)
		return res, lifecycle.Infeasible(fmt.Sprintf("proved by %s", strat))
	}

	if opts.Diverse && len(mults) > limit {
		mults = DiverseSelect(mults, limit)
		res.Stats.Notes = append(res.Stats.Notes, "diverse selection applied (max-min Jaccard greedy)")
	}
	if len(mults) > limit {
		mults = mults[:limit]
	}
	for _, m := range mults {
		pkg, err := p.buildPackage(m)
		if err != nil {
			return nil, err
		}
		res.Packages = append(res.Packages, pkg)
	}
	// An exact strategy that ran to completion is its own certificate:
	// the best package IS the optimum — a zero-width certified interval.
	// The solver path (branch-and-bound dual bound) and the sketch path
	// (LP relaxation over leaves or raw candidates) set richer intervals
	// inside their runners; this only fills the enumeration strategies.
	if res.Stats.Exact && !res.Stats.Certified && p.Query != nil && p.Query.Objective != nil && len(res.Packages) > 0 {
		res.Stats.BoundValue = res.Packages[0].Objective
		res.Stats.Gap = 0
		res.Stats.Certified = true
		res.Stats.BoundStage = plan.BoundMILPDual
	}
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

func (p *Prepared) runEnum(ctx context.Context, res *Result, opts Options, fetch int, brute bool) ([][]int, error) {
	sopt := search.Options{
		Ctx:            ctx,
		Limit:          fetch,
		Timeout:        opts.Timeout,
		Seed:           opts.Seed,
		DisablePruning: opts.DisablePruning || brute,
		Require:        opts.Require,
	}
	var sres *search.Result
	var err error
	if brute {
		sres, err = search.BruteForce(p.Instance, sopt)
	} else {
		sres, err = search.PrunedEnumerate(p.Instance, sopt)
	}
	if err != nil {
		return nil, err
	}
	res.Stats.Nodes = sres.Examined
	res.Stats.Exact = sres.Complete
	if !sres.Complete {
		res.Stats.Notes = append(res.Stats.Notes, "enumeration hit its budget; result may be suboptimal")
	}
	var mults [][]int
	for _, pk := range sres.Packages {
		mults = append(mults, pk.Mult)
	}
	return mults, nil
}

func (p *Prepared) runLocal(ctx context.Context, res *Result, opts Options, fetch int) ([][]int, error) {
	sres, err := search.LocalSearch(p.Instance, p.DB, search.Options{
		Ctx:      ctx,
		Limit:    fetch,
		Timeout:  opts.Timeout,
		Seed:     opts.Seed,
		Restarts: opts.Restarts,
		MaxK:     opts.MaxK,
		Require:  opts.Require,
	})
	if err != nil {
		return nil, err
	}
	res.Stats.Nodes = sres.Examined
	res.Stats.SQLQueries = sres.Queries
	res.Stats.Restarts = sres.Restarts
	res.Stats.Exact = false
	res.Stats.Notes = append(res.Stats.Notes, "local search is heuristic: packages may be suboptimal and the set incomplete")
	var mults [][]int
	for _, pk := range sres.Packages {
		mults = append(mults, pk.Mult)
	}
	return mults, nil
}

func (p *Prepared) runSketch(ctx context.Context, res *Result, opts Options, fetch int) ([][]int, error) {
	start := time.Now()
	cache := opts.SketchCache
	if cache == nil {
		cache = p.SketchCache
	}
	if opts.SketchNoCache {
		cache = nil
	}
	if cache == nil && fetch > 1 && p.Instance.MaxMult == 1 {
		// Evaluation-scoped cache: the exclusion-cut re-solves below
		// reuse the partition tree instead of re-partitioning per
		// package. Never leaks across queries, so SketchNoCache's
		// isolation promise holds.
		cache = sketch.NewCache(2)
	}
	// Fingerprint memo: resolve the candidate fingerprint incrementally
	// (zero hashing on an unchanged table, delta-only after writes) and,
	// with SketchIncremental, pick up the lineage that lets a stale
	// cached tree be patched in place instead of rebuilt.
	memo := opts.SketchMemo
	if memo == nil {
		memo = p.SketchMemo
	}
	var fpPtr *uint64
	var patch *sketch.PatchSpec
	if memo != nil {
		fp, pspec := memo.Advance(p)
		fpPtr = &fp
		if opts.SketchIncremental {
			patch = pspec
		}
	}
	// Options.Timeout bounds the whole evaluation: the re-solves below
	// run on whatever budget the earlier solves left over.
	remaining := func() (time.Duration, bool) {
		if opts.Timeout <= 0 {
			return 0, true
		}
		left := opts.Timeout - time.Since(start)
		return left, left > 0
	}
	// The planner's bound decision names the pipeline stage to run;
	// non-sketch values (milp-dual, none) fall through to "" = the
	// engine's full pipeline.
	boundMode := ""
	if res.Stats.Plan != nil {
		switch res.Stats.Plan.Bound {
		case plan.BoundRawLP, plan.BoundTreeLP, plan.BoundTreeLPTighten, plan.BoundDescend1:
			boundMode = res.Stats.Plan.Bound
		}
	}
	sres, err := sketch.Solve(p.Instance, sketch.Options{
		Ctx:              ctx,
		MaxPartitionSize: opts.SketchPartitionSize,
		NumPartitions:    opts.SketchPartitions,
		Depth:            opts.SketchDepth,
		Seed:             opts.Seed,
		Timeout:          opts.Timeout,
		SolverNodes:      opts.SolverNodes,
		Cache:            cache,
		Require:          opts.Require,
		Parallelism:      opts.SketchParallelism,
		PersistDir:       opts.SketchPersistDir,
		Fingerprint:      fpPtr,
		Patch:            patch,
		GapTolerance:     opts.GapTolerance,
		BoundMode:        boundMode,
	})
	if err != nil {
		return nil, err
	}
	res.Stats.Partitions = sres.Partitions
	res.Stats.Repaired = sres.Repaired
	res.Stats.SketchLevels = sres.Levels
	res.Stats.SketchTopVars = sres.TopVars
	res.Stats.SketchBranches = sres.Branches
	res.Stats.SketchAtomRewrites = sres.AtomRewrites
	res.Stats.SketchCacheHit = sres.CacheHit
	res.Stats.SketchTreeLoaded = sres.TreeLoaded
	res.Stats.SketchTreePatched = sres.TreePatched
	res.Stats.SketchDeltaApplied = sres.DeltaApplied
	res.Stats.SketchCoalesced = sres.Coalesced
	res.Stats.SketchWorkers = sres.Workers
	res.Stats.Nodes += sres.Nodes
	res.Stats.LPIters += sres.LPIters
	res.Stats.Exact = false
	res.Stats.BoundValue = sres.Bound
	res.Stats.Gap = sres.Gap
	res.Stats.Certified = sres.Certified
	res.Stats.BoundStage = sres.BoundStage
	res.Stats.BoundTightenRounds = sres.BoundRounds
	res.Stats.Notes = append(res.Stats.Notes, sres.Notes...)
	if len(sres.Degraded) > 0 {
		res.Stats.DegradedReasons = append(res.Stats.DegradedReasons, sres.Degraded...)
		res.Stats.Degraded = true
	}
	gapNote := "; objective gap unproven"
	if sres.Certified {
		iv := bound.Interval{Found: sres.Objective, Bound: sres.Bound, Certified: true}
		gapNote = "; certified " + iv.FormatInterval()
		if sres.BoundStage != "" {
			gapNote += fmt.Sprintf(" via %s", sres.BoundStage)
			if sres.BoundRounds > 0 {
				gapNote += fmt.Sprintf(", %d tightening round(s)", sres.BoundRounds)
			}
		}
	}
	res.Stats.Notes = append(res.Stats.Notes, fmt.Sprintf(
		"sketch-refine: %d leaf partitions (τ bound), %d levels, %d top-level vars%s%s, %d active, %d refined, %d repaired%s",
		sres.Partitions, sres.Levels, sres.TopVars, cacheNote(sres.CacheHit, sres.TreeLoaded, sres.TreePatched),
		branchNote(sres.Branches, sres.AtomRewrites), sres.Active, sres.Refined, sres.Repaired, gapNote))
	if !sres.Feasible {
		res.Stats.Notes = append(res.Stats.Notes,
			"sketch-refine found no feasible package (the query may still be feasible; try -strategy solver)")
		return nil, nil
	}
	mults := [][]int{sres.Mult}
	if fetch > 1 {
		// One sketch solve yields one deterministic package. Additional
		// distinct packages (top-k, diverse sets, adaptive exploration's
		// Replace) come from re-solving with exclusion cuts in sketch
		// space — the cached partition tree is reused, so each extra
		// package costs one sketch+refine pass, no re-partitioning.
		if p.Instance.MaxMult == 1 {
			exclude := [][]int{sres.Mult}
			for len(mults) < fetch {
				left, ok := remaining()
				if !ok {
					res.Stats.Notes = append(res.Stats.Notes, "sketch-refine: timeout reached before all requested packages")
					break
				}
				alt, err := sketch.Solve(p.Instance, sketch.Options{
					Ctx:              ctx,
					MaxPartitionSize: opts.SketchPartitionSize,
					NumPartitions:    opts.SketchPartitions,
					Depth:            opts.SketchDepth,
					Seed:             opts.Seed,
					Timeout:          left,
					SolverNodes:      opts.SolverNodes,
					Cache:            cache,
					Require:          opts.Require,
					Exclude:          exclude,
					Parallelism:      opts.SketchParallelism,
					PersistDir:       opts.SketchPersistDir,
					Fingerprint:      fpPtr,
					Patch:            patch,
				})
				if err != nil {
					res.Stats.Notes = append(res.Stats.Notes,
						fmt.Sprintf("sketch-refine: exclusion-cut solve failed: %v", err))
					break
				}
				if !alt.Feasible {
					break // no further distinct package reachable
				}
				res.Stats.Nodes += alt.Nodes
				res.Stats.LPIters += alt.LPIters
				mults = append(mults, alt.Mult)
				exclude = append(exclude, alt.Mult)
			}
			res.Stats.Notes = append(res.Stats.Notes, fmt.Sprintf(
				"sketch-refine: %d of %d requested packages via exclusion cuts in sketch space",
				len(mults), fetch))
		} else {
			// REPEAT queries: exclusion cuts need 0/1 multiplicities, so
			// perturb the partition size and seed instead — moving τ
			// moves every partition boundary, so the sketch lands
			// elsewhere.
			baseTau := sketch.Options{
				MaxPartitionSize: opts.SketchPartitionSize,
				NumPartitions:    opts.SketchPartitions,
			}.EffectiveTau(len(p.Instance.Rows))
			seen := map[string]bool{MultKey(sres.Mult): true}
			for attempt := int64(1); len(mults) < fetch && attempt <= 2*int64(fetch); attempt++ {
				left, ok := remaining()
				if !ok {
					res.Stats.Notes = append(res.Stats.Notes, "sketch-refine: timeout reached before all requested packages")
					break
				}
				// No cache and no persistence: each perturbed (τ, seed)
				// pair is near single-use — it would evict hot trees
				// from the shared LRU and litter the store with files
				// no later run asks for.
				alt, err := sketch.Solve(p.Instance, sketch.Options{
					Ctx:              ctx,
					MaxPartitionSize: baseTau + int(attempt),
					Depth:            opts.SketchDepth,
					Seed:             opts.Seed + attempt,
					Timeout:          left,
					SolverNodes:      opts.SolverNodes,
					Require:          opts.Require,
					Parallelism:      opts.SketchParallelism,
				})
				if err != nil {
					// Deterministic errors would repeat across attempts;
					// stop instead of re-partitioning 2*fetch times.
					res.Stats.Notes = append(res.Stats.Notes,
						fmt.Sprintf("sketch-refine: perturbed solve failed: %v", err))
					break
				}
				if !alt.Feasible {
					continue
				}
				res.Stats.Nodes += alt.Nodes
				res.Stats.LPIters += alt.LPIters
				if k := MultKey(alt.Mult); !seen[k] {
					seen[k] = true
					mults = append(mults, alt.Mult)
				}
			}
			res.Stats.Notes = append(res.Stats.Notes, fmt.Sprintf(
				"sketch-refine: %d of %d requested packages via partition perturbation (REPEAT blocks exclusion cuts)",
				len(mults), fetch))
		}
		sortMultsByObjective(p.Instance, mults)
	}
	return mults, nil
}

// MultKey renders a multiplicity vector as an exact dedup key (no
// clamping: REPEAT multiplicities must not collide). Shared by the
// engine's multi-package sketch path and explore's Replace history.
func MultKey(mult []int) string {
	var b strings.Builder
	for i, m := range mult {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(m))
	}
	return b.String()
}

// sortMultsByObjective orders packages best-first under the query's
// objective sense (no-op for objective-free queries).
func sortMultsByObjective(inst *search.Instance, mults [][]int) {
	if inst.Analysis.Query.Objective == nil || len(mults) < 2 {
		return
	}
	type pkg struct {
		mult []int
		obj  float64
	}
	ps := make([]pkg, len(mults))
	for i, m := range mults {
		o, _ := inst.Objective(m)
		ps[i] = pkg{mult: m, obj: o}
	}
	sort.SliceStable(ps, func(i, j int) bool { return inst.Better(ps[i].obj, ps[j].obj) })
	for i := range ps {
		mults[i] = ps[i].mult
	}
}

// branchNote renders the DNF-branch and atom-rewrite counters for the
// sketch-refine stats note; conjunctive SUM/COUNT queries (one branch,
// no rewrites) keep the classic note text.
func branchNote(branches, rewrites int) string {
	s := ""
	if branches > 1 {
		s += fmt.Sprintf(", %d branches", branches)
	}
	if rewrites > 0 {
		s += fmt.Sprintf(", %d atom rewrites", rewrites)
	}
	return s
}

func cacheNote(hit, loaded, patched bool) string {
	switch {
	case hit:
		return " (partition tree from cache)"
	case loaded:
		return " (partition tree from disk)"
	case patched:
		return " (partition tree patched in place)"
	}
	return ""
}

func (p *Prepared) runSolver(ctx context.Context, res *Result, opts Options, fetch int) ([][]int, error) {
	model, err := translate.Translate(p.Analysis, p.Instance.Rows, p.Instance.IDs)
	if err != nil {
		return nil, err
	}
	for _, i := range opts.Require {
		if err := model.RequireTuple(i); err != nil {
			return nil, err
		}
	}
	mopts := milp.Options{MaxNodes: opts.SolverNodes, TimeLimit: opts.Timeout, Ctx: ctx}
	// Hybrid warm start: hand the solver a local-search incumbent so
	// bound pruning bites immediately. Only valid when the model has no
	// indicator variables (their values are not part of a package).
	if !opts.NoHybridSeed && model.NumIndicators() == 0 && p.Query.Objective != nil && p.Instance.MaxMult > 0 {
		ls, err := search.LocalSearch(p.Instance, p.DB, search.Options{
			Ctx: ctx, Limit: 1, Seed: opts.Seed, Restarts: 2, MaxK: 1,
			Timeout: 200 * time.Millisecond, Require: opts.Require,
		})
		if err == nil && len(ls.Packages) > 0 {
			seed := make([]float64, model.MILP.LP.NumVars())
			for i, m := range ls.Packages[0].Mult {
				seed[i] = float64(m)
			}
			mopts.InitialIncumbent = seed
			res.Stats.SQLQueries += ls.Queries
			res.Stats.Notes = append(res.Stats.Notes, "solver warm-started with a local-search incumbent")
		}
	}
	exact := true
	var mults [][]int
	for k := 0; k < fetch; k++ {
		sol := milp.Solve(model.MILP, mopts)
		res.Stats.Nodes += int64(sol.Nodes)
		res.Stats.LPIters += sol.LPIters
		if sol.Status == milp.StatusInfeasible {
			break // no more packages
		}
		if sol.Status == milp.StatusUnbounded {
			return nil, fmt.Errorf("engine: objective is unbounded (add constraints or REPEAT)")
		}
		if sol.Status != milp.StatusOptimal {
			exact = false
			if sol.X == nil {
				res.Stats.Notes = append(res.Stats.Notes, "solver hit its limits without an incumbent")
				break
			}
			res.Stats.Notes = append(res.Stats.Notes, "solver hit its limits; best incumbent returned without proof")
		}
		if k == 0 && p.Query.Objective != nil && p.Instance.ObjW != nil && !sol.Canceled {
			// The branch-and-bound dual bound is the certificate the exact
			// path gets for free. A canceled search proves nothing (a node
			// may have been dropped mid-relaxation), so only uncanceled
			// solves certify. Translate drops the affine objective
			// constant, so both sides add it back; the limit-path bound is
			// clamped to the incumbent (the global dual bound is the
			// better of the best open node and the incumbent) and padded
			// against round-off.
			sense := lp.Minimize
			if p.Query.Objective.Sense == paql.Maximize {
				sense = lp.Maximize
			}
			found := sol.Objective + p.Instance.ObjK
			if sol.Status == milp.StatusOptimal {
				res.Stats.BoundValue = found
			} else {
				b := sol.Bound + p.Instance.ObjK
				if sense == lp.Maximize && b < found || sense == lp.Minimize && b > found {
					b = found
				}
				res.Stats.BoundValue = bound.Pad(b, sense)
			}
			res.Stats.Certified = true
			res.Stats.Gap = bound.Interval{Found: found, Bound: res.Stats.BoundValue}.Gap()
			res.Stats.BoundStage = plan.BoundMILPDual
		}
		mult := model.Multiplicities(sol.X)
		mults = append(mults, mult)
		if k+1 < fetch {
			if err := model.AddExclusionCut(mult); err != nil {
				res.Stats.Notes = append(res.Stats.Notes,
					fmt.Sprintf("multiple packages unavailable: %v", err))
				break
			}
			// The warm-start incumbent is excluded by the cut now.
			mopts.InitialIncumbent = nil
		}
	}
	res.Stats.Exact = exact
	return mults, nil
}

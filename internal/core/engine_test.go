package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/minidb"
	"repro/internal/value"
)

func testDB(t *testing.T) *minidb.DB {
	t.Helper()
	db := minidb.New()
	stmts := []string{
		`CREATE TABLE recipes (id INT, name TEXT, gluten TEXT, calories FLOAT, protein FLOAT, price FLOAT)`,
		`INSERT INTO recipes VALUES
			(1, 'Oatmeal',   'free', 300, 10, 4),
			(2, 'Pasta',     'full', 550, 18, 7),
			(3, 'Salad',     'free', 150, 4,  6),
			(4, 'Chicken',   'free', 420, 38, 11),
			(5, 'Burger',    'full', 800, 30, 9),
			(6, 'Tofu Bowl', 'free', 380, 22, 8),
			(7, 'Smoothie',  'free', 200, 6,  5),
			(8, 'Steak',     'free', 650, 45, 15),
			(9, 'Curry',     'free', 500, 21, 9),
			(10,'Wrap',      'free', 350, 15, 6)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

const mealQuery = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	WHERE R.gluten = 'free'
	SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 1200 AND 1600
	MAXIMIZE SUM(P.protein)`

func TestStrategiesAgreeOnOptimum(t *testing.T) {
	db := testDB(t)
	var exact float64
	for i, strat := range []Strategy{Solver, PrunedEnum, BruteForceStrategy} {
		res, err := Evaluate(db, mealQuery, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(res.Packages) != 1 {
			t.Fatalf("%v: %d packages", strat, len(res.Packages))
		}
		if !res.Stats.Exact {
			t.Errorf("%v should be exact", strat)
		}
		if i == 0 {
			exact = res.Packages[0].Objective
		} else if math.Abs(res.Packages[0].Objective-exact) > 1e-6 {
			t.Errorf("%v objective %g != solver %g", strat, res.Packages[0].Objective, exact)
		}
		if res.Stats.Strategy != strat {
			t.Errorf("stats.Strategy = %v, want %v", res.Stats.Strategy, strat)
		}
	}
	// Local search never beats exact.
	res, err := Evaluate(db, mealQuery, Options{Strategy: LocalSearchStrategy, Restarts: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) > 0 && res.Packages[0].Objective > exact+1e-9 {
		t.Errorf("local search %g beats exact %g", res.Packages[0].Objective, exact)
	}
	if res.Stats.SQLQueries == 0 {
		t.Error("local search stats missing SQL query count")
	}
}

func TestAutoChoosesSolverForLinear(t *testing.T) {
	db := testDB(t)
	res, err := Evaluate(db, mealQuery, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Strategy != Solver {
		t.Errorf("auto chose %v, want solver", res.Stats.Strategy)
	}
	if !res.Stats.Linear {
		t.Error("meal query should be linear")
	}
	found := false
	for _, n := range res.Stats.Notes {
		if strings.Contains(n, "planner:") {
			found = true
		}
	}
	if !found {
		t.Errorf("auto decision not recorded: %v", res.Stats.Notes)
	}
}

func TestAutoFallsBackForNonlinear(t *testing.T) {
	db := testDB(t)
	q := `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 2 AND SUM(P.calories) * SUM(P.protein) <= 50000
		MAXIMIZE SUM(P.protein)`
	res, err := Evaluate(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Strategy != PrunedEnum {
		t.Errorf("auto chose %v for small non-linear query, want pruned-enum", res.Stats.Strategy)
	}
	if res.Stats.Linear {
		t.Error("query should be non-linear")
	}
	if len(res.Packages) != 1 {
		t.Fatalf("packages = %d", len(res.Packages))
	}
	// validate the product constraint truly holds
	p := res.Packages[0]
	cal, _ := p.AggValues["SUM(R.calories)"].AsFloat()
	prot, _ := p.AggValues["SUM(R.protein)"].AsFloat()
	if cal*prot > 50000+1e-6 {
		t.Errorf("nonlinear constraint violated: %g * %g", cal, prot)
	}
}

func TestSolverRequestedForNonlinearFallsBack(t *testing.T) {
	db := testDB(t)
	q := `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 2 AND SUM(P.calories) * SUM(P.protein) <= 50000`
	res, err := Evaluate(db, q, Options{Strategy: Solver})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Strategy == Solver {
		t.Error("solver cannot run non-linear queries; engine should fall back")
	}
	noteOK := false
	for _, n := range res.Stats.Notes {
		if strings.Contains(n, "falling back") {
			noteOK = true
		}
	}
	if !noteOK {
		t.Errorf("fallback not explained: %v", res.Stats.Notes)
	}
}

func TestMultiplePackagesViaExclusionCuts(t *testing.T) {
	db := testDB(t)
	q := strings.Replace(mealQuery, "MAXIMIZE SUM(P.protein)", "MAXIMIZE SUM(P.protein)\nLIMIT 4", 1)
	res, err := Evaluate(db, q, Options{Strategy: Solver})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 4 {
		t.Fatalf("packages = %d, want 4", len(res.Packages))
	}
	seen := map[string]bool{}
	prev := math.Inf(1)
	for _, p := range res.Packages {
		key := ""
		for _, id := range p.TupleIDs() {
			key += string(rune('a' + id))
		}
		if seen[key] {
			t.Error("duplicate package across exclusion cuts")
		}
		seen[key] = true
		if p.Objective > prev+1e-9 {
			t.Error("packages should be non-increasing in objective")
		}
		prev = p.Objective
	}
}

func TestDiverseSelection(t *testing.T) {
	db := testDB(t)
	q := `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 900 AND 2000
		MAXIMIZE SUM(P.protein) LIMIT 3`
	topk, err := Evaluate(db, q, Options{Strategy: Solver})
	if err != nil {
		t.Fatal(err)
	}
	diverse, err := Evaluate(db, q, Options{Strategy: Solver, Diverse: true, OverFetch: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(topk.Packages) != 3 || len(diverse.Packages) != 3 {
		t.Fatalf("sizes: %d, %d", len(topk.Packages), len(diverse.Packages))
	}
	dist := func(pkgs []*Package) float64 {
		var mults [][]int
		for _, p := range pkgs {
			mults = append(mults, p.Mult)
		}
		return MinPairwiseDistance(mults)
	}
	if dist(diverse.Packages) < dist(topk.Packages)-1e-9 {
		t.Errorf("diverse min-distance %g < top-k %g", dist(diverse.Packages), dist(topk.Packages))
	}
}

func TestSubqueryFolding(t *testing.T) {
	db := testDB(t)
	q := `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= (SELECT MAX(calories) FROM recipes)
		MAXIMIZE SUM(P.protein)`
	res, err := Evaluate(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 1 {
		t.Fatalf("packages = %d", len(res.Packages))
	}
	cal, _ := res.Packages[0].AggValues["SUM(R.calories)"].AsFloat()
	if cal > 800 {
		t.Errorf("folded bound violated: %g > 800", cal)
	}
	// failing subquery surfaces
	if _, err := Evaluate(db, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = (SELECT id FROM recipes)`, Options{}); err == nil {
		t.Error("multi-row subquery should fail")
	}
}

func TestInfeasibleQueryReturnsEmpty(t *testing.T) {
	db := testDB(t)
	q := `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 2 AND COUNT(*) = 5`
	res, err := Evaluate(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 0 || !res.Stats.Exact {
		t.Errorf("infeasible query: %d packages, exact=%v", len(res.Packages), res.Stats.Exact)
	}
	if !res.Stats.Bounds.IsInfeasible() {
		t.Errorf("bounds = %v", res.Stats.Bounds)
	}
}

func TestRepeatQueryThroughEngine(t *testing.T) {
	db := testDB(t)
	q := `
		SELECT PACKAGE(R) AS P FROM recipes R REPEAT 2
		WHERE R.gluten = 'free'
		SUCH THAT COUNT(*) = 3 AND SUM(P.protein) >= 130
		MAXIMIZE SUM(P.protein)`
	res, err := Evaluate(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 1 {
		t.Fatalf("packages = %d", len(res.Packages))
	}
	// optimum repeats Steak (45 protein) three times
	if res.Packages[0].Objective != 135 {
		t.Errorf("objective = %g, want 135 (3x Steak)", res.Packages[0].Objective)
	}
	maxMult := 0
	for _, m := range res.Packages[0].Mult {
		if m > maxMult {
			maxMult = m
		}
	}
	if maxMult != 3 {
		t.Errorf("max multiplicity = %d, want 3", maxMult)
	}
}

func TestBaseConstraintsFilterCandidates(t *testing.T) {
	db := testDB(t)
	res, err := Evaluate(db, mealQuery, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Candidates != 8 { // 10 recipes, 2 with gluten
		t.Errorf("candidates = %d, want 8", res.Stats.Candidates)
	}
	for _, row := range res.Packages[0].Rows {
		if row[2].StrVal() != "free" {
			t.Errorf("package contains non-free tuple: %v", row)
		}
	}
}

func TestStatsSpaceAndAggValues(t *testing.T) {
	db := testDB(t)
	res, err := Evaluate(db, mealQuery, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpaceFull == nil || res.Stats.SpacePruned == nil {
		t.Fatal("space sizes not computed")
	}
	if res.Stats.SpaceFull.Cmp(res.Stats.SpacePruned) <= 0 {
		t.Errorf("full space %v should exceed pruned %v", res.Stats.SpaceFull, res.Stats.SpacePruned)
	}
	p := res.Packages[0]
	if v, ok := p.AggValues["COUNT(*)"]; !ok || !v.Equal(value.Int(3)) {
		t.Errorf("COUNT(*) agg = %v", v)
	}
	if p.Size() != 3 || len(p.Rows) != 3 || len(p.TupleIDs()) != 3 {
		t.Errorf("package shape: size=%d rows=%d ids=%d", p.Size(), len(p.Rows), len(p.TupleIDs()))
	}
}

func TestErrorPaths(t *testing.T) {
	db := testDB(t)
	if _, err := Evaluate(db, `SELECT PACKAGE(R) AS P FROM nope R`, Options{}); err == nil {
		t.Error("unknown relation should fail")
	}
	if _, err := Evaluate(db, `garbage`, Options{}); err == nil {
		t.Error("parse error should surface")
	}
	if _, err := Evaluate(db, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT SUM(P.nope) <= 3`, Options{}); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestDiverseSelectHelpers(t *testing.T) {
	a := []int{1, 1, 0, 0}
	b := []int{1, 1, 0, 0}
	c := []int{0, 0, 1, 1}
	d := []int{1, 0, 1, 0}
	if JaccardDistance(a, b) != 0 {
		t.Error("identical packages should have distance 0")
	}
	if JaccardDistance(a, c) != 1 {
		t.Error("disjoint packages should have distance 1")
	}
	got := JaccardDistance(a, d) // inter 1, union 3
	if math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("distance = %g", got)
	}
	sel := DiverseSelect([][]int{a, b, c, d}, 2)
	if len(sel) != 2 {
		t.Fatalf("selected %d", len(sel))
	}
	// first is a; most distant from a is c
	if JaccardDistance(sel[0], sel[1]) != 1 {
		t.Errorf("diverse pick suboptimal: %v", sel)
	}
	// k >= len passes through
	if len(DiverseSelect([][]int{a, c}, 5)) != 2 {
		t.Error("overlarge k should pass through")
	}
	// multiplicity-aware distance
	if d := JaccardDistance([]int{2, 0}, []int{1, 1}); math.Abs(d-2.0/3) > 1e-9 {
		t.Errorf("multiset distance = %g", d)
	}
	if MinPairwiseDistance([][]int{a}) != 1 {
		t.Error("single package min distance should be 1")
	}
	if MeanPairwiseDistance([][]int{a, b, c}) == 0 {
		t.Error("mean distance should be positive")
	}
}

func TestHybridSeedAblation(t *testing.T) {
	db := testDB(t)
	with, err := Evaluate(db, mealQuery, Options{Strategy: Solver})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Evaluate(db, mealQuery, Options{Strategy: Solver, NoHybridSeed: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(with.Packages[0].Objective-without.Packages[0].Objective) > 1e-9 {
		t.Error("hybrid seeding changed the optimum")
	}
}

package core

import (
	"fmt"
	"slices"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/minidb"
	"repro/internal/sketch"
)

// TestConcurrentInvalidationRacingDeltaPatch races the two sides of a
// write landing in the incremental stack: solves prepared *before* the
// write (which publish trees under the old fingerprint and advance the
// shared memo from stale lineage) against solves prepared *after* it
// (which patch the stale tree via ApplyDelta and publish under the new
// fingerprint), all over one shared cache + memo. Writes themselves are
// barriered between generations — minidb serializes writers against
// readers at the DB layer, not against a solve in flight — but within a
// generation the stale and fresh evaluations run fully concurrently,
// which is exactly the window where a patch could be published under
// the wrong key.
//
// The invariant under test: a tree is never published under a stale
// fingerprint. Detection is sharp on both ends — core hard-errors any
// package that fails validation against its own prepared instance, and
// the post-barrier warm run must serve a cached tree whose answer is
// identical to one the concurrent fresh solves computed (a tree from
// the pre-write snapshot has a different candidate count, so a
// cross-published tree cannot reproduce either answer). Run under
// -race this also sweeps the cache/memo synchronization itself.
func TestConcurrentInvalidationRacingDeltaPatch(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 300, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	cache := sketch.NewCache(0)
	memo := NewFingerprintMemo()
	opts := incrOptions(cache, memo)

	prevPrep, err := Prepare(db, incrQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prevPrep.Run(opts); err != nil {
		t.Fatal(err)
	}

	generations := 8
	if testing.Short() {
		generations = 3
	}
	for gen := 0; gen < generations; gen++ {
		// One write batch per generation, alternating growth and decay
		// so the delta log sees both appends and tombstones.
		if gen%2 == 0 {
			for i := 0; i < 4; i++ {
				stmt := fmt.Sprintf("INSERT INTO recipes VALUES (%d, 'race%d_%d', 'fusion', 'dinner', 'free', %d, %d, 10, 50, 9.5, 4.5)",
					90000+gen*10+i, gen, i, 600+i*17, 25+i)
				if _, err := db.Exec(stmt); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			if _, err := db.Exec(fmt.Sprintf("DELETE FROM recipes WHERE id >= %d AND id < %d", 20+gen*3, 23+gen*3)); err != nil {
				t.Fatal(err)
			}
		}
		curPrep, err := Prepare(db, incrQuery)
		if err != nil {
			t.Fatal(err)
		}

		// Two stale solves and two fresh solves, concurrently, over the
		// shared stack. The stale pair republishes old-fingerprint
		// trees and races the fresh pair's patch + invalidation.
		var wg sync.WaitGroup
		errs := make([]error, 4)
		fresh := make([]*Result, 2)
		for i := 0; i < 2; i++ {
			wg.Add(2)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = prevPrep.Run(opts)
			}(i)
			go func(i int) {
				defer wg.Done()
				fresh[i], errs[2+i] = curPrep.Run(opts)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("gen %d solve %d: %v", gen, i, err)
			}
		}

		// The warm run after the storm must serve the tree published
		// under the *current* fingerprint and reproduce a fresh solve's
		// answer exactly.
		warm, err := curPrep.Run(opts)
		if err != nil {
			t.Fatalf("gen %d warm verify: %v", gen, err)
		}
		if !warm.Stats.SketchCacheHit {
			t.Fatalf("gen %d: no tree cached under the post-write fingerprint", gen)
		}
		match := false
		for _, f := range fresh {
			if f == nil || len(f.Packages) != len(warm.Packages) {
				continue
			}
			if len(warm.Packages) == 0 ||
				slices.Equal(warm.Packages[0].Mult, f.Packages[0].Mult) {
				match = true
				break
			}
		}
		if !match {
			t.Fatalf("gen %d: warm answer matches neither concurrent fresh solve — cached tree is not theirs", gen)
		}
		prevPrep = curPrep
	}
}

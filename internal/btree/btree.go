// Package btree implements an in-memory B+-tree mapping single-column
// datum keys to row ids. minidb uses it for secondary indexes: ordered
// range scans, and O(log n) MIN/MAX column statistics, which the §4.1
// cardinality-pruning rules need (l = ⌈a/MAX(col)⌉, u = ⌊b/MIN(col)⌋).
//
// Keys are ordered by value.V's total sort order. NULL keys are not
// stored (callers skip NULLs, as SQL indexes do). Duplicate keys share
// one entry whose row-id list grows. Deletion removes row ids and drops
// empty entries from leaves without rebalancing — acceptable for an
// in-memory index whose tables are mostly append-only.
package btree

import (
	"fmt"

	"repro/internal/value"
)

// degree is the maximum number of entries in a leaf and the maximum
// number of children of an internal node.
const degree = 32

// Tree is a B+-tree index. The zero value is not usable; call New.
type Tree struct {
	root   node
	pairs  int // number of (key, rid) pairs
	uniq   int // number of distinct keys
	height int
}

type node interface {
	// insert adds rid under key, returning a split (newRight, sepKey)
	// when the node overflowed, or nil.
	insert(key value.V, rid int32) (node, value.V, bool)
}

type entry struct {
	key  value.V
	rids []int32
}

type leafNode struct {
	entries []entry
	next    *leafNode
}

type innerNode struct {
	// keys[i] is the smallest key reachable under children[i+1].
	keys     []value.V
	children []node
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &leafNode{}, height: 1}
}

// Len returns the number of (key, rid) pairs in the tree.
func (t *Tree) Len() int { return t.pairs }

// KeyCount returns the number of distinct keys.
func (t *Tree) KeyCount() int { return t.uniq }

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() int { return t.height }

// Insert adds rid under key. NULL keys are rejected.
func (t *Tree) Insert(key value.V, rid int32) error {
	if key.IsNull() {
		return fmt.Errorf("btree: cannot index NULL keys")
	}
	right, sep, grewKey := t.root.insert(key, rid)
	if grewKey {
		t.uniq++
	}
	t.pairs++
	if right != nil {
		t.root = &innerNode{keys: []value.V{sep}, children: []node{t.root, right}}
		t.height++
	}
	return nil
}

func (n *leafNode) insert(key value.V, rid int32) (node, value.V, bool) {
	i := n.search(key)
	if i < len(n.entries) && n.entries[i].key.Equal(key) {
		n.entries[i].rids = append(n.entries[i].rids, rid)
		return nil, value.V{}, false
	}
	n.entries = append(n.entries, entry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = entry{key: key, rids: []int32{rid}}
	if len(n.entries) <= degree {
		return nil, value.V{}, true
	}
	// Split: right half moves to a new leaf.
	mid := len(n.entries) / 2
	right := &leafNode{entries: append([]entry(nil), n.entries[mid:]...), next: n.next}
	n.entries = n.entries[:mid:mid]
	n.next = right
	return right, right.entries[0].key, true
}

// search returns the first index whose key is >= key.
func (n *leafNode) search(key value.V) int {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		m := (lo + hi) / 2
		if n.entries[m].key.SortLess(key) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

func (n *innerNode) insert(key value.V, rid int32) (node, value.V, bool) {
	i := n.search(key)
	right, sep, grew := n.children[i].insert(key, rid)
	if right == nil {
		return nil, value.V{}, grew
	}
	n.keys = append(n.keys, value.V{})
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.children) <= degree {
		return nil, value.V{}, grew
	}
	// Split the inner node; the middle key moves up.
	midKey := len(n.keys) / 2
	upKey := n.keys[midKey]
	newRight := &innerNode{
		keys:     append([]value.V(nil), n.keys[midKey+1:]...),
		children: append([]node(nil), n.children[midKey+1:]...),
	}
	n.keys = n.keys[:midKey:midKey]
	n.children = n.children[: midKey+1 : midKey+1]
	return newRight, upKey, grew
}

// search returns the child index to descend into for key.
func (n *innerNode) search(key value.V) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		m := (lo + hi) / 2
		// Descend right when key >= keys[m].
		if key.SortLess(n.keys[m]) {
			hi = m
		} else {
			lo = m + 1
		}
	}
	return lo
}

// Delete removes rid from key's entry. It reports whether the pair was
// present. Empty entries are removed from their leaf; no rebalancing.
func (t *Tree) Delete(key value.V, rid int32) bool {
	lf, i := t.seekLeaf(key)
	if lf == nil || i >= len(lf.entries) || !lf.entries[i].key.Equal(key) {
		return false
	}
	e := &lf.entries[i]
	for j, r := range e.rids {
		if r == rid {
			e.rids = append(e.rids[:j], e.rids[j+1:]...)
			t.pairs--
			if len(e.rids) == 0 {
				lf.entries = append(lf.entries[:i], lf.entries[i+1:]...)
				t.uniq--
			}
			return true
		}
	}
	return false
}

// seekLeaf descends to the leaf that would contain key, returning the
// leaf and the position of the first entry >= key.
func (t *Tree) seekLeaf(key value.V) (*leafNode, int) {
	n := t.root
	for {
		switch v := n.(type) {
		case *leafNode:
			return v, v.search(key)
		case *innerNode:
			n = v.children[v.search(key)]
		}
	}
}

// Lookup returns the row ids stored under key (nil when absent). The
// returned slice must not be modified.
func (t *Tree) Lookup(key value.V) []int32 {
	if key.IsNull() {
		return nil
	}
	lf, i := t.seekLeaf(key)
	if i < len(lf.entries) && lf.entries[i].key.Equal(key) {
		return lf.entries[i].rids
	}
	return nil
}

// Bound describes one end of a range scan.
type Bound struct {
	Key       value.V
	Inclusive bool
}

// AscendRange visits keys in ascending order within [lo, hi] (either may
// be nil for unbounded). fn returning false stops the scan.
func (t *Tree) AscendRange(lo, hi *Bound, fn func(key value.V, rids []int32) bool) {
	var lf *leafNode
	var i int
	if lo == nil {
		lf = t.leftmostLeaf()
		i = 0
	} else {
		lf, i = t.seekLeaf(lo.Key)
		// Skip the boundary key itself when exclusive.
		if !lo.Inclusive && i < len(lf.entries) && lf.entries[i].key.Equal(lo.Key) {
			i++
		}
	}
	for lf != nil {
		for ; i < len(lf.entries); i++ {
			e := lf.entries[i]
			if hi != nil {
				cmp, _ := e.key.Compare(hi.Key)
				if cmp > 0 || (cmp == 0 && !hi.Inclusive) {
					return
				}
			}
			if !fn(e.key, e.rids) {
				return
			}
		}
		lf = lf.next
		i = 0
	}
}

// Ascend visits all keys in ascending order.
func (t *Tree) Ascend(fn func(key value.V, rids []int32) bool) {
	t.AscendRange(nil, nil, fn)
}

// Min returns the smallest key, or ok=false when the tree is empty.
func (t *Tree) Min() (value.V, bool) {
	lf := t.leftmostLeaf()
	if len(lf.entries) == 0 {
		return value.V{}, false
	}
	return lf.entries[0].key, true
}

// Max returns the largest key, or ok=false when the tree is empty.
func (t *Tree) Max() (value.V, bool) {
	n := t.root
	for {
		switch v := n.(type) {
		case *leafNode:
			// With lazy deletes a rightmost leaf can be empty; walk back
			// via a full scan only in that rare case.
			if len(v.entries) > 0 {
				return v.entries[len(v.entries)-1].key, true
			}
			var last value.V
			found := false
			t.Ascend(func(k value.V, _ []int32) bool {
				last, found = k, true
				return true
			})
			return last, found
		case *innerNode:
			n = v.children[len(v.children)-1]
		}
	}
}

func (t *Tree) leftmostLeaf() *leafNode {
	n := t.root
	for {
		switch v := n.(type) {
		case *leafNode:
			return v
		case *innerNode:
			n = v.children[0]
		}
	}
}

// checkInvariants validates ordering and structure; used by tests.
func (t *Tree) checkInvariants() error {
	var prev *value.V
	count := 0
	keys := 0
	var walk func(n node, depth int) (int, error)
	leafDepth := -1
	walk = func(n node, depth int) (int, error) {
		switch v := n.(type) {
		case *leafNode:
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return 0, fmt.Errorf("btree: leaves at different depths %d vs %d", leafDepth, depth)
			}
			return depth, nil
		case *innerNode:
			if len(v.children) != len(v.keys)+1 {
				return 0, fmt.Errorf("btree: inner node with %d keys, %d children", len(v.keys), len(v.children))
			}
			for _, c := range v.children {
				if _, err := walk(c, depth+1); err != nil {
					return 0, err
				}
			}
			return depth, nil
		}
		return 0, fmt.Errorf("btree: unknown node type %T", n)
	}
	if _, err := walk(t.root, 1); err != nil {
		return err
	}
	ok := true
	t.Ascend(func(k value.V, rids []int32) bool {
		if prev != nil && !prev.SortLess(k) {
			ok = false
			return false
		}
		kk := k
		prev = &kk
		keys++
		count += len(rids)
		return true
	})
	if !ok {
		return fmt.Errorf("btree: keys out of order")
	}
	if count != t.pairs {
		return fmt.Errorf("btree: pair count %d != tracked %d", count, t.pairs)
	}
	if keys != t.uniq {
		return fmt.Errorf("btree: key count %d != tracked %d", keys, t.uniq)
	}
	return nil
}

package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.KeyCount() != 0 || tr.Height() != 1 {
		t.Errorf("empty tree: len=%d keys=%d h=%d", tr.Len(), tr.KeyCount(), tr.Height())
	}
	if _, ok := tr.Min(); ok {
		t.Error("Min on empty should be !ok")
	}
	if _, ok := tr.Max(); ok {
		t.Error("Max on empty should be !ok")
	}
	if got := tr.Lookup(value.Int(1)); got != nil {
		t.Errorf("Lookup on empty = %v", got)
	}
}

func TestInsertLookupSmall(t *testing.T) {
	tr := New()
	for i := int32(0); i < 10; i++ {
		if err := tr.Insert(value.Int(int64(i%5)), i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 10 || tr.KeyCount() != 5 {
		t.Errorf("len=%d keys=%d, want 10, 5", tr.Len(), tr.KeyCount())
	}
	rids := tr.Lookup(value.Int(3))
	if len(rids) != 2 {
		t.Errorf("Lookup(3) = %v", rids)
	}
	if got := tr.Lookup(value.Int(99)); got != nil {
		t.Errorf("Lookup(99) = %v", got)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertNullRejected(t *testing.T) {
	tr := New()
	if err := tr.Insert(value.Null(), 0); err == nil {
		t.Error("NULL key should be rejected")
	}
}

func TestLargeInsertSplitsAndOrder(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(42))
	n := 5000
	perm := rng.Perm(n)
	for _, k := range perm {
		if err := tr.Insert(value.Int(int64(k)), int32(k)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n || tr.KeyCount() != n {
		t.Fatalf("len=%d keys=%d", tr.Len(), tr.KeyCount())
	}
	if tr.Height() < 3 {
		t.Errorf("tree of %d keys should have split; height=%d", n, tr.Height())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	mn, _ := tr.Min()
	mx, _ := tr.Max()
	if !mn.Equal(value.Int(0)) || !mx.Equal(value.Int(int64(n-1))) {
		t.Errorf("min=%v max=%v", mn, mx)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i += 2 { // even keys 0..98
		_ = tr.Insert(value.Int(int64(i)), int32(i))
	}
	collect := func(lo, hi *Bound) []int64 {
		var out []int64
		tr.AscendRange(lo, hi, func(k value.V, rids []int32) bool {
			out = append(out, k.IntVal())
			return true
		})
		return out
	}
	got := collect(&Bound{Key: value.Int(10), Inclusive: true}, &Bound{Key: value.Int(20), Inclusive: true})
	want := []int64{10, 12, 14, 16, 18, 20}
	if !equalInt64(got, want) {
		t.Errorf("range [10,20] = %v", got)
	}
	got = collect(&Bound{Key: value.Int(10), Inclusive: false}, &Bound{Key: value.Int(20), Inclusive: false})
	want = []int64{12, 14, 16, 18}
	if !equalInt64(got, want) {
		t.Errorf("range (10,20) = %v", got)
	}
	// boundary not present in tree
	got = collect(&Bound{Key: value.Int(11), Inclusive: true}, &Bound{Key: value.Int(15), Inclusive: true})
	want = []int64{12, 14}
	if !equalInt64(got, want) {
		t.Errorf("range [11,15] = %v", got)
	}
	// unbounded below
	got = collect(nil, &Bound{Key: value.Int(4), Inclusive: true})
	want = []int64{0, 2, 4}
	if !equalInt64(got, want) {
		t.Errorf("range (-inf,4] = %v", got)
	}
	// unbounded above
	got = collect(&Bound{Key: value.Int(94), Inclusive: true}, nil)
	want = []int64{94, 96, 98}
	if !equalInt64(got, want) {
		t.Errorf("range [94,inf) = %v", got)
	}
	// early stop
	n := 0
	tr.Ascend(func(value.V, []int32) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := int32(0); i < 200; i++ {
		_ = tr.Insert(value.Int(int64(i)), i)
		_ = tr.Insert(value.Int(int64(i)), i+1000)
	}
	if !tr.Delete(value.Int(5), 5) {
		t.Error("delete existing pair failed")
	}
	if tr.Delete(value.Int(5), 5) {
		t.Error("double delete should fail")
	}
	if got := tr.Lookup(value.Int(5)); len(got) != 1 || got[0] != 1005 {
		t.Errorf("after delete Lookup(5) = %v", got)
	}
	if !tr.Delete(value.Int(5), 1005) {
		t.Error("delete second rid failed")
	}
	if got := tr.Lookup(value.Int(5)); got != nil {
		t.Errorf("key should be gone, got %v", got)
	}
	if tr.Delete(value.Int(9999), 1) {
		t.Error("delete absent key should fail")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Error(err)
	}
	if tr.Len() != 398 || tr.KeyCount() != 199 {
		t.Errorf("len=%d keys=%d", tr.Len(), tr.KeyCount())
	}
}

func TestMixedKeyTypes(t *testing.T) {
	tr := New()
	_ = tr.Insert(value.Str("b"), 1)
	_ = tr.Insert(value.Str("a"), 2)
	_ = tr.Insert(value.Float(1.5), 3)
	_ = tr.Insert(value.Int(2), 4)
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Numeric keys interleave correctly: 1.5 < 2
	var keys []string
	tr.Ascend(func(k value.V, _ []int32) bool {
		keys = append(keys, k.String())
		return true
	})
	if len(keys) != 4 {
		t.Fatalf("keys = %v", keys)
	}
	if keys[0] != "1.5" || keys[1] != "2" {
		t.Errorf("numeric order broken: %v", keys)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New()
	words := []string{"pasta", "salad", "burger", "taco", "ramen", "pizza"}
	for i, w := range words {
		_ = tr.Insert(value.Str(w), int32(i))
	}
	sorted := append([]string(nil), words...)
	sort.Strings(sorted)
	var got []string
	tr.Ascend(func(k value.V, _ []int32) bool {
		got = append(got, k.StrVal())
		return true
	})
	for i := range sorted {
		if got[i] != sorted[i] {
			t.Fatalf("order = %v, want %v", got, sorted)
		}
	}
}

// Property: a tree built from any int slice yields the same sorted
// distinct keys as a map-based oracle, and Len matches the input size.
func TestPropMatchesOracle(t *testing.T) {
	f := func(keys []int16) bool {
		tr := New()
		oracle := map[int64][]int32{}
		for i, k := range keys {
			_ = tr.Insert(value.Int(int64(k)), int32(i))
			oracle[int64(k)] = append(oracle[int64(k)], int32(i))
		}
		if tr.Len() != len(keys) || tr.KeyCount() != len(oracle) {
			return false
		}
		if err := tr.checkInvariants(); err != nil {
			return false
		}
		ok := true
		tr.Ascend(func(k value.V, rids []int32) bool {
			want := oracle[k.IntVal()]
			if len(want) != len(rids) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: after random deletes, remaining pairs match the oracle.
func TestPropDeleteMatchesOracle(t *testing.T) {
	f := func(keys []uint8, dels []uint8) bool {
		tr := New()
		type pair struct {
			k int64
			r int32
		}
		alive := map[pair]bool{}
		for i, k := range keys {
			_ = tr.Insert(value.Int(int64(k)), int32(i))
			alive[pair{int64(k), int32(i)}] = true
		}
		for j, d := range dels {
			p := pair{int64(d), int32(j)}
			got := tr.Delete(value.Int(p.k), p.r)
			if got != alive[p] {
				return false
			}
			delete(alive, p)
		}
		return tr.Len() == len(alive) && tr.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		_ = tr.Insert(value.Int(int64(i%100000)), int32(i))
	}
}

func BenchmarkLookup(b *testing.B) {
	tr := New()
	for i := int32(0); i < 100000; i++ {
		_ = tr.Insert(value.Int(int64(i)), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(value.Int(int64(i % 100000)))
	}
}

package lp

import (
	"math"
)

const (
	feasTol = 1e-7 // feasibility tolerance
	costTol = 1e-9 // reduced-cost optimality tolerance
	pivTol  = 1e-9 // minimum pivot magnitude
)

// Options tunes the solver.
type Options struct {
	// MaxIters bounds simplex iterations per phase; 0 selects an
	// automatic limit based on problem size.
	MaxIters int
	// Cancel, when non-nil, is polled once per simplex iteration; a
	// true return stops the solve with StatusIterLimit. Each iteration
	// costs O(m·n) arithmetic, so the poll is noise — this is the
	// cooperative-cancellation hook the branch-and-bound layer uses to
	// abandon node relaxations promptly.
	Cancel func() bool
}

// Solve optimizes the problem with the bounded-variable two-phase
// primal simplex. The returned solution's X has one value per problem
// variable (slacks and artificials are internal).
func Solve(p *Problem, opts ...Options) *Solution {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	t := newTableau(p)
	maxIters := opt.MaxIters
	if maxIters <= 0 {
		maxIters = 2000 + 50*(t.m+t.n)
	}

	sol := &Solution{}
	// Phase 1: minimize the sum of artificial variables.
	if t.needPhase1 {
		status, iters := t.iterate(t.phase1Costs(), maxIters, opt.Cancel)
		sol.Iterations += iters
		if status == StatusIterLimit {
			sol.Status = StatusIterLimit
			return sol
		}
		if t.phase1Objective() > 1e-6 {
			sol.Status = StatusInfeasible
			return sol
		}
	}
	// Pin artificials to zero even when phase 1 was skipped because the
	// initial point was already feasible: every artificial starts at 0
	// then, but with its upper bound still infinite phase 2 could move
	// a basic artificial off zero — reporting a spurious unbounded ray
	// or returning a point that violates its equality row.
	t.fixArtificials()
	// Phase 2: the real objective.
	status, iters := t.iterate(t.costs, maxIters, opt.Cancel)
	sol.Iterations += iters
	switch status {
	case StatusIterLimit, StatusUnbounded:
		sol.Status = status
		return sol
	}
	sol.Status = StatusOptimal
	sol.X = make([]float64, p.n)
	copy(sol.X, t.x[:p.n])
	obj := 0.0
	for j := 0; j < p.n; j++ {
		obj += p.obj[j] * sol.X[j]
	}
	sol.Objective = obj
	return sol
}

// tableau is the dense simplex state over the extended variable set
// [structural | slacks | artificials].
type tableau struct {
	m, n int // rows, total columns

	a  [][]float64 // m×n: current tableau rows (basic columns are unit)
	tb []float64   // m: B⁻¹ b

	lo, up  []float64 // n: bounds of every column
	costs   []float64 // n: phase-2 costs (structural = ±obj, rest 0)
	basis   []int     // m: basic column per row
	inBasis []bool    // n
	atUpper []bool    // n: nonbasic position (false = at lower bound)
	x       []float64 // n: current values

	artStart   int // first artificial column
	needPhase1 bool
	maximize   bool
}

func newTableau(p *Problem) *tableau {
	m := len(p.rows)
	// Column layout: structural, then one slack per inequality row, then
	// one artificial per row that needs it.
	nSlack := 0
	for _, r := range p.rows {
		if r.Op != EQ {
			nSlack++
		}
	}
	n := p.n + nSlack + m // reserve artificial space for every row
	t := &tableau{
		m: m, n: n,
		a:       make([][]float64, m),
		tb:      make([]float64, m),
		lo:      make([]float64, n),
		up:      make([]float64, n),
		costs:   make([]float64, n),
		basis:   make([]int, m),
		inBasis: make([]bool, n),
		atUpper: make([]bool, n),
		x:       make([]float64, n),
	}
	for j := 0; j < n; j++ {
		t.up[j] = Inf
	}
	copy(t.lo, p.lo)
	copy(t.up, p.up)
	t.maximize = p.sense == Maximize
	for j := 0; j < p.n; j++ {
		if t.maximize {
			t.costs[j] = -p.obj[j]
		} else {
			t.costs[j] = p.obj[j]
		}
	}
	// Build rows.
	slack := p.n
	t.artStart = p.n + nSlack
	art := t.artStart
	for i, r := range p.rows {
		row := make([]float64, n)
		for _, c := range r.Coefs {
			row[c.Var] += c.Val
		}
		switch r.Op {
		case LE:
			row[slack] = 1
			slack++
		case GE:
			row[slack] = -1
			slack++
		}
		t.a[i] = row
		t.tb[i] = r.RHS
	}
	// Start: all structural and slack columns nonbasic at their finite
	// bound nearest zero; artificials absorb the residual.
	for j := 0; j < t.artStart; j++ {
		t.x[j] = t.lo[j]
		if t.up[j] < Inf && math.Abs(t.up[j]) < math.Abs(t.lo[j]) {
			t.x[j] = t.up[j]
			t.atUpper[j] = true
		}
	}
	for i := 0; i < m; i++ {
		resid := t.tb[i]
		for j := 0; j < t.artStart; j++ {
			resid -= t.a[i][j] * t.x[j]
		}
		col := art + i
		if resid >= 0 {
			t.a[i][col] = 1
		} else {
			t.a[i][col] = -1
		}
		t.lo[col] = 0
		t.up[col] = Inf
		t.basis[i] = col
		t.inBasis[col] = true
		t.x[col] = math.Abs(resid)
		if t.x[col] > feasTol {
			t.needPhase1 = true
		}
	}
	// Normalize rows so basic (artificial) columns are +1 and the
	// tableau starts in canonical form.
	for i := 0; i < m; i++ {
		col := t.basis[i]
		if t.a[i][col] < 0 {
			for j := 0; j < n; j++ {
				t.a[i][j] = -t.a[i][j]
			}
			t.tb[i] = -t.tb[i]
		}
	}
	return t
}

// phase1Costs returns the phase-1 cost vector (1 per artificial).
func (t *tableau) phase1Costs() []float64 {
	c := make([]float64, t.n)
	for j := t.artStart; j < t.n; j++ {
		c[j] = 1
	}
	return c
}

// phase1Objective sums artificial values.
func (t *tableau) phase1Objective() float64 {
	s := 0.0
	for j := t.artStart; j < t.n; j++ {
		s += t.x[j]
	}
	return s
}

// fixArtificials pins artificial variables to zero so phase 2 cannot
// reuse them, and pivots basic zero-valued artificials out when a
// non-artificial pivot column exists.
func (t *tableau) fixArtificials() {
	for j := t.artStart; j < t.n; j++ {
		t.up[j] = 0
	}
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if !t.inBasis[j] && math.Abs(t.a[i][j]) > pivTol {
				t.pivot(i, j)
				break
			}
		}
	}
}

// recompute refreshes basic-variable values from the nonbasic bound
// assignment: x_B = B⁻¹b − Σ_nonbasic (B⁻¹A)ⱼ xⱼ.
func (t *tableau) recompute() {
	for i := 0; i < t.m; i++ {
		v := t.tb[i]
		row := t.a[i]
		for j := 0; j < t.n; j++ {
			if !t.inBasis[j] && t.x[j] != 0 {
				v -= row[j] * t.x[j]
			}
		}
		t.x[t.basis[i]] = v
	}
}

// reducedCosts computes d = c − c_Bᵀ (B⁻¹A).
func (t *tableau) reducedCosts(c []float64) []float64 {
	d := make([]float64, t.n)
	copy(d, c)
	for i := 0; i < t.m; i++ {
		cb := c[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.n; j++ {
			d[j] -= cb * row[j]
		}
	}
	return d
}

// iterate runs the simplex with cost vector c until optimal, unbounded,
// the iteration limit, or cancellation. It uses Dantzig pricing with a
// Bland fallback after a stretch of degenerate pivots to guarantee
// termination.
func (t *tableau) iterate(c []float64, maxIters int, cancel func() bool) (Status, int) {
	t.recompute()
	degenerate := 0
	const blandAfter = 200
	for iter := 0; iter < maxIters; iter++ {
		if cancel != nil && cancel() {
			return StatusIterLimit, iter
		}
		d := t.reducedCosts(c)
		// entering variable
		enter := -1
		best := 0.0
		bland := degenerate > blandAfter
		for j := 0; j < t.n; j++ {
			if t.inBasis[j] || t.lo[j] == t.up[j] {
				continue
			}
			var viol float64
			if !t.atUpper[j] && d[j] < -costTol {
				viol = -d[j]
			} else if t.atUpper[j] && d[j] > costTol {
				viol = d[j]
			} else {
				continue
			}
			if bland {
				enter = j
				break
			}
			if viol > best {
				best = viol
				enter = j
			}
		}
		if enter == -1 {
			return StatusOptimal, iter
		}
		// Direction: increasing from lower bound, decreasing from upper.
		dir := 1.0
		if t.atUpper[enter] {
			dir = -1.0
		}
		// Ratio test: smallest step that drives a basic variable to a
		// bound, or flips the entering variable to its other bound.
		tMax := math.Inf(1)
		leaveRow := -1
		leaveAtUpper := false
		if t.up[enter] < Inf {
			tMax = t.up[enter] - t.lo[enter]
		}
		for i := 0; i < t.m; i++ {
			coef := t.a[i][enter] * dir
			if math.Abs(coef) < pivTol {
				continue
			}
			k := t.basis[i]
			xv := t.x[k]
			var limit float64
			var hitsUpper bool
			if coef > 0 {
				// basic variable decreases toward its lower bound
				limit = (xv - t.lo[k]) / coef
				hitsUpper = false
			} else {
				// basic variable increases toward its upper bound
				if t.up[k] == Inf {
					continue
				}
				limit = (xv - t.up[k]) / coef
				hitsUpper = true
			}
			if limit < -feasTol {
				limit = 0
			}
			if limit < tMax-pivTol {
				tMax = limit
				leaveRow = i
				leaveAtUpper = hitsUpper
			} else if bland && leaveRow >= 0 && math.Abs(limit-tMax) <= pivTol {
				// Bland tie-break: smallest basic index leaves.
				if t.basis[i] < t.basis[leaveRow] {
					leaveRow = i
					leaveAtUpper = hitsUpper
				}
			}
		}
		if math.IsInf(tMax, 1) {
			return StatusUnbounded, iter
		}
		if tMax <= pivTol {
			degenerate++
		} else {
			degenerate = 0
		}
		if leaveRow == -1 {
			// Bound flip: entering variable jumps to its other bound.
			t.atUpper[enter] = !t.atUpper[enter]
			if t.atUpper[enter] {
				t.x[enter] = t.up[enter]
			} else {
				t.x[enter] = t.lo[enter]
			}
			t.recompute()
			continue
		}
		leaving := t.basis[leaveRow]
		t.pivot(leaveRow, enter)
		t.atUpper[leaving] = leaveAtUpper
		if leaveAtUpper {
			t.x[leaving] = t.up[leaving]
		} else {
			t.x[leaving] = t.lo[leaving]
		}
		t.recompute()
	}
	return StatusIterLimit, maxIters
}

// pivot performs a Gauss-Jordan pivot: column enter becomes basic in
// row r.
func (t *tableau) pivot(r, enter int) {
	old := t.basis[r]
	piv := t.a[r][enter]
	row := t.a[r]
	inv := 1.0 / piv
	for j := 0; j < t.n; j++ {
		row[j] *= inv
	}
	t.tb[r] *= inv
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j < t.n; j++ {
			ri[j] -= f * row[j]
		}
		t.tb[i] -= f * t.tb[r]
	}
	t.basis[r] = enter
	t.inBasis[old] = false
	t.inBasis[enter] = true
}

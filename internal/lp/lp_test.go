package lp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s := Solve(p)
	if s.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	checkFeasible(t, p, s.X)
	return s
}

// checkFeasible verifies a solution against all constraints and bounds.
func checkFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	const tol = 1e-5
	for j := 0; j < p.NumVars(); j++ {
		lo, up := p.Bounds(j)
		if x[j] < lo-tol || x[j] > up+tol {
			t.Errorf("x[%d]=%g violates bounds [%g,%g]", j, x[j], lo, up)
		}
	}
	for i, row := range p.rows {
		lhs := 0.0
		for _, c := range row.Coefs {
			lhs += c.Val * x[c.Var]
		}
		switch row.Op {
		case LE:
			if lhs > row.RHS+tol {
				t.Errorf("row %d: %g <= %g violated", i, lhs, row.RHS)
			}
		case GE:
			if lhs < row.RHS-tol {
				t.Errorf("row %d: %g >= %g violated", i, lhs, row.RHS)
			}
		case EQ:
			if math.Abs(lhs-row.RHS) > tol {
				t.Errorf("row %d: %g = %g violated", i, lhs, row.RHS)
			}
		}
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6; opt at (4, 0) -> 12.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{3, 2}, Maximize)
	_, _ = p.AddConstraint([]Coef{{0, 1}, {1, 1}}, LE, 4)
	_, _ = p.AddConstraint([]Coef{{0, 1}, {1, 3}}, LE, 6)
	s := solveOK(t, p)
	if !approx(s.Objective, 12) {
		t.Errorf("objective = %g, want 12", s.Objective)
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x <= 6; opt (6,4) -> 24.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{2, 3}, Minimize)
	_, _ = p.AddConstraint([]Coef{{0, 1}, {1, 1}}, GE, 10)
	_, _ = p.AddConstraint([]Coef{{0, 1}}, LE, 6)
	s := solveOK(t, p)
	if !approx(s.Objective, 24) {
		t.Errorf("objective = %g, want 24", s.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + y s.t. x + 2y = 8, x,y >= 0; opt (0,4) -> 4.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{1, 1}, Minimize)
	_, _ = p.AddConstraint([]Coef{{0, 1}, {1, 2}}, EQ, 8)
	s := solveOK(t, p)
	if !approx(s.Objective, 4) {
		t.Errorf("objective = %g, want 4", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	_ = p.SetObjective([]float64{1}, Minimize)
	_, _ = p.AddConstraint([]Coef{{0, 1}}, GE, 5)
	_, _ = p.AddConstraint([]Coef{{0, 1}}, LE, 3)
	if s := Solve(p); s.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	_ = p.SetObjective([]float64{1}, Maximize)
	_, _ = p.AddConstraint([]Coef{{0, 1}}, GE, 0)
	if s := Solve(p); s.Status != StatusUnbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestVariableUpperBounds(t *testing.T) {
	// max x + y with x <= 2 (bound), y <= 3 (bound), x + y <= 4.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{1, 1}, Maximize)
	_ = p.SetBounds(0, 0, 2)
	_ = p.SetBounds(1, 0, 3)
	_, _ = p.AddConstraint([]Coef{{0, 1}, {1, 1}}, LE, 4)
	s := solveOK(t, p)
	if !approx(s.Objective, 4) {
		t.Errorf("objective = %g, want 4", s.Objective)
	}
}

func TestFixedVariable(t *testing.T) {
	// Branch-and-bound fixes variables by collapsing bounds.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{5, 4}, Maximize)
	_ = p.SetBounds(0, 1, 1) // x fixed at 1
	_ = p.SetBounds(1, 0, 1)
	_, _ = p.AddConstraint([]Coef{{0, 1}, {1, 1}}, LE, 1.5)
	s := solveOK(t, p)
	if !approx(s.X[0], 1) || !approx(s.X[1], 0.5) {
		t.Errorf("x = %v, want [1, 0.5]", s.X)
	}
}

func TestNonzeroLowerBounds(t *testing.T) {
	// min x + y with x >= 2, y >= 3 (bounds), x + y >= 6.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{1, 1}, Minimize)
	_ = p.SetBounds(0, 2, Inf)
	_ = p.SetBounds(1, 3, Inf)
	_, _ = p.AddConstraint([]Coef{{0, 1}, {1, 1}}, GE, 6)
	s := solveOK(t, p)
	if !approx(s.Objective, 6) {
		t.Errorf("objective = %g, want 6", s.Objective)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Multiple redundant constraints through the optimum.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{1, 1}, Maximize)
	_, _ = p.AddConstraint([]Coef{{0, 1}, {1, 1}}, LE, 2)
	_, _ = p.AddConstraint([]Coef{{0, 1}}, LE, 2)
	_, _ = p.AddConstraint([]Coef{{1, 1}}, LE, 2)
	_, _ = p.AddConstraint([]Coef{{0, 2}, {1, 2}}, LE, 4)
	s := solveOK(t, p)
	if !approx(s.Objective, 2) {
		t.Errorf("objective = %g, want 2", s.Objective)
	}
}

func TestRedundantEquality(t *testing.T) {
	// x + y = 4 stated twice: phase 1 must cope with a redundant row.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{1, 2}, Minimize)
	_, _ = p.AddConstraint([]Coef{{0, 1}, {1, 1}}, EQ, 4)
	_, _ = p.AddConstraint([]Coef{{0, 2}, {1, 2}}, EQ, 8)
	s := solveOK(t, p)
	if !approx(s.Objective, 4) { // all weight on x
		t.Errorf("objective = %g, want 4", s.Objective)
	}
}

func TestTransportation(t *testing.T) {
	// 2 supplies (10, 20), 2 demands (15, 15), costs [[1,2],[3,1]].
	// Optimal: s0->d0:10, s1->d0:5, s1->d1:15 => 10 + 15 + 15 = 40.
	p := NewProblem(4) // x00 x01 x10 x11
	_ = p.SetObjective([]float64{1, 2, 3, 1}, Minimize)
	_, _ = p.AddConstraint([]Coef{{0, 1}, {1, 1}}, EQ, 10)
	_, _ = p.AddConstraint([]Coef{{2, 1}, {3, 1}}, EQ, 20)
	_, _ = p.AddConstraint([]Coef{{0, 1}, {2, 1}}, EQ, 15)
	_, _ = p.AddConstraint([]Coef{{1, 1}, {3, 1}}, EQ, 15)
	s := solveOK(t, p)
	if !approx(s.Objective, 40) {
		t.Errorf("objective = %g, want 40", s.Objective)
	}
}

func TestMealPlanRelaxation(t *testing.T) {
	// LP relaxation of the paper's meal query: pick x_i in [0,1],
	// count = 3, 2000 <= sum cal <= 2500, max protein.
	cal := []float64{300, 550, 150, 420, 800, 380, 200, 650}
	prot := []float64{10, 18, 4, 38, 30, 22, 6, 45}
	n := len(cal)
	p := NewProblem(n)
	obj := make([]float64, n)
	copy(obj, prot)
	_ = p.SetObjective(obj, Maximize)
	var cnt, cs []Coef
	for i := 0; i < n; i++ {
		_ = p.SetBounds(i, 0, 1)
		cnt = append(cnt, Coef{i, 1})
		cs = append(cs, Coef{i, cal[i]})
	}
	_, _ = p.AddConstraint(cnt, EQ, 3)
	_, _ = p.AddConstraint(cs, GE, 2000)
	_, _ = p.AddConstraint(cs, LE, 2500)
	s := solveOK(t, p)
	// The integral optimum is {Chicken 420/38, Burger 800/30, Steak
	// 650/45} = 1870 cal -> infeasible; actual integral best is
	// {Pasta, Chicken, Burger}=1770? No: constraint >= 2000 forces
	// heavier sets. The LP bound must be >= any integral solution:
	// {Burger 800, Steak 650, Pasta 550} = 2000 cal, protein 93.
	if s.Objective < 93-1e-6 {
		t.Errorf("LP bound %g below known integral solution 93", s.Objective)
	}
	// count respected
	total := 0.0
	for _, v := range s.X {
		total += v
	}
	if !approx(total, 3) {
		t.Errorf("count = %g", total)
	}
}

func TestObjectiveAPIErrors(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1}, Minimize); err == nil {
		t.Error("short objective should fail")
	}
	if err := p.SetObjectiveCoef(5, 1); err == nil {
		t.Error("out-of-range coef should fail")
	}
	if err := p.SetBounds(0, 3, 2); err == nil {
		t.Error("empty bound range should fail")
	}
	if err := p.SetBounds(0, math.Inf(-1), 0); err == nil {
		t.Error("infinite lower bound should fail")
	}
	if err := p.SetBounds(9, 0, 1); err == nil {
		t.Error("out-of-range bounds should fail")
	}
	if _, err := p.AddConstraint([]Coef{{7, 1}}, LE, 1); err == nil {
		t.Error("out-of-range constraint var should fail")
	}
	if err := p.SetObjectiveCoef(1, 2.5); err != nil {
		t.Error(err)
	}
	p.SetSense(Maximize)
	if p.Sense() != Maximize {
		t.Error("sense not set")
	}
}

func TestClone(t *testing.T) {
	p := NewProblem(2)
	_ = p.SetObjective([]float64{1, 1}, Maximize)
	_ = p.SetBounds(0, 0, 5)
	_, _ = p.AddConstraint([]Coef{{0, 1}, {1, 1}}, LE, 3)
	q := p.Clone()
	_ = q.SetBounds(0, 0, 1)
	if _, up := p.Bounds(0); up != 5 {
		t.Error("Clone must not share bounds")
	}
	if q.NumRows() != 1 || q.NumVars() != 2 {
		t.Error("Clone lost structure")
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{StatusOptimal, StatusInfeasible, StatusUnbounded, StatusIterLimit} {
		if s.String() == "" {
			t.Error("empty status name")
		}
	}
}

// Property: the LP relaxation of a random fractional knapsack matches
// the greedy density oracle exactly.
func TestPropFractionalKnapsackMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(12)
		w := make([]float64, n)
		v := make([]float64, n)
		totW := 0.0
		for i := range w {
			w[i] = 1 + float64(rng.Intn(50))
			v[i] = 1 + float64(rng.Intn(100))
			totW += w[i]
		}
		cap := totW * (0.2 + 0.6*rng.Float64())
		// greedy oracle
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return v[idx[a]]/w[idx[a]] > v[idx[b]]/w[idx[b]] })
		remaining := cap
		want := 0.0
		for _, i := range idx {
			if w[i] <= remaining {
				want += v[i]
				remaining -= w[i]
			} else {
				want += v[i] * remaining / w[i]
				break
			}
		}
		// LP
		p := NewProblem(n)
		obj := make([]float64, n)
		copy(obj, v)
		_ = p.SetObjective(obj, Maximize)
		var row []Coef
		for i := 0; i < n; i++ {
			_ = p.SetBounds(i, 0, 1)
			row = append(row, Coef{i, w[i]})
		}
		_, _ = p.AddConstraint(row, LE, cap)
		s := Solve(p)
		if s.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		checkFeasible(t, p, s.X)
		if math.Abs(s.Objective-want) > 1e-5*(1+want) {
			t.Fatalf("trial %d: lp=%g greedy=%g (n=%d cap=%g)", trial, s.Objective, want, n, cap)
		}
	}
}

// Property: on random feasible systems, the solver never returns a point
// violating constraints, and minimize/maximize agree via negation.
func TestPropRandomLPsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(5)
		p := NewProblem(n)
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = float64(rng.Intn(21) - 10)
			_ = p.SetBounds(j, 0, float64(1+rng.Intn(10)))
		}
		_ = p.SetObjective(obj, Maximize)
		for i := 0; i < m; i++ {
			var row []Coef
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.7 {
					row = append(row, Coef{j, float64(rng.Intn(9) + 1)})
				}
			}
			if len(row) == 0 {
				row = []Coef{{0, 1}}
			}
			// RHS generous enough to keep x=0 feasible.
			_, _ = p.AddConstraint(row, LE, float64(rng.Intn(40)+1))
		}
		s := Solve(p)
		if s.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v (bounded feasible problem)", trial, s.Status)
		}
		checkFeasible(t, p, s.X)
		// negated problem solved as Minimize agrees
		neg := p.Clone()
		nobj := make([]float64, n)
		for j := range nobj {
			nobj[j] = -obj[j]
		}
		_ = neg.SetObjective(nobj, Minimize)
		s2 := Solve(neg)
		if s2.Status != StatusOptimal {
			t.Fatalf("trial %d: negated status %v", trial, s2.Status)
		}
		if math.Abs(s.Objective+s2.Objective) > 1e-5*(1+math.Abs(s.Objective)) {
			t.Fatalf("trial %d: max %g != -min %g", trial, s.Objective, -s2.Objective)
		}
	}
}

func BenchmarkMealRelaxation1000(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 1000
	p := NewProblem(n)
	obj := make([]float64, n)
	var cnt, cs []Coef
	for i := 0; i < n; i++ {
		obj[i] = float64(rng.Intn(50))
		_ = p.SetBounds(i, 0, 1)
		cnt = append(cnt, Coef{i, 1})
		cs = append(cs, Coef{i, float64(100 + rng.Intn(900))})
	}
	_ = p.SetObjective(obj, Maximize)
	_, _ = p.AddConstraint(cnt, EQ, 3)
	_, _ = p.AddConstraint(cs, GE, 2000)
	_, _ = p.AddConstraint(cs, LE, 2500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := Solve(p); s.Status != StatusOptimal {
			b.Fatal(s.Status)
		}
	}
}

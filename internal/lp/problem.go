// Package lp implements a dense, bounded-variable, two-phase primal
// simplex solver for linear programs. It is the foundation of the MILP
// branch-and-bound in internal/milp, which PackageBuilder uses as its
// "state-of-the-art constraint solver" substitute: PaQL queries are
// translated to integer programs whose LP relaxations this package
// solves.
//
// The solver handles
//
//	minimize    cᵀx
//	subject to  Σⱼ aᵢⱼ xⱼ  {≤,=,≥}  bᵢ      for each row i
//	            loⱼ ≤ xⱼ ≤ upⱼ               for each variable j
//
// with finite lower bounds (default 0) and optionally infinite upper
// bounds. Variable bounds are handled natively by the simplex (nonbasic
// variables sit at either bound and can "bound-flip"), which keeps the
// tableau small: branch-and-bound tightens bounds without adding rows.
package lp

import (
	"fmt"
	"math"
)

// Inf is the upper bound meaning "unbounded above".
var Inf = math.Inf(1)

// Sense selects the optimization direction.
type Sense int

// The two optimization directions.
const (
	Minimize Sense = iota
	Maximize
)

// Op is a constraint relation.
type Op int

const (
	LE Op = iota // Σ aᵢⱼxⱼ ≤ b
	GE           // Σ aᵢⱼxⱼ ≥ b
	EQ           // Σ aᵢⱼxⱼ = b
)

// String renders the relation as its PaQL/SQL operator.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Coef is one term of a constraint row.
type Coef struct {
	Var int
	Val float64
}

// Constraint is one linear constraint.
type Constraint struct {
	Coefs []Coef
	Op    Op
	RHS   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; call NewProblem.
type Problem struct {
	n     int
	obj   []float64
	sense Sense
	rows  []Constraint
	lo    []float64
	up    []float64
}

// NewProblem creates a problem with n variables, all with bounds
// [0, +inf) and zero objective coefficients.
func NewProblem(n int) *Problem {
	p := &Problem{
		n:   n,
		obj: make([]float64, n),
		lo:  make([]float64, n),
		up:  make([]float64, n),
	}
	for j := range p.up {
		p.up[j] = Inf
	}
	return p
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.n }

// NumRows returns the number of constraints.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObjective sets the objective coefficients and sense. The slice
// must have one entry per variable.
func (p *Problem) SetObjective(coefs []float64, sense Sense) error {
	if len(coefs) != p.n {
		return fmt.Errorf("lp: objective has %d coefficients for %d variables", len(coefs), p.n)
	}
	copy(p.obj, coefs)
	p.sense = sense
	return nil
}

// SetObjectiveCoef sets a single objective coefficient.
func (p *Problem) SetObjectiveCoef(j int, c float64) error {
	if j < 0 || j >= p.n {
		return fmt.Errorf("lp: variable %d out of range", j)
	}
	p.obj[j] = c
	return nil
}

// SetSense sets the optimization direction.
func (p *Problem) SetSense(s Sense) { p.sense = s }

// Sense returns the optimization direction.
func (p *Problem) Sense() Sense { return p.sense }

// SetBounds sets [lo, up] for a variable. lo must be finite and ≤ up;
// up may be Inf.
func (p *Problem) SetBounds(j int, lo, up float64) error {
	if j < 0 || j >= p.n {
		return fmt.Errorf("lp: variable %d out of range", j)
	}
	if math.IsInf(lo, 0) || math.IsNaN(lo) || math.IsNaN(up) {
		return fmt.Errorf("lp: lower bound of variable %d must be finite", j)
	}
	if lo > up {
		return fmt.Errorf("lp: variable %d has empty bound range [%g, %g]", j, lo, up)
	}
	p.lo[j] = lo
	p.up[j] = up
	return nil
}

// Bounds returns [lo, up] of a variable.
func (p *Problem) Bounds(j int) (lo, up float64) { return p.lo[j], p.up[j] }

// ObjectiveCoef returns the objective coefficient of variable j.
func (p *Problem) ObjectiveCoef(j int) float64 { return p.obj[j] }

// Row returns constraint i (shared slice; do not modify).
func (p *Problem) Row(i int) Constraint { return p.rows[i] }

// Feasible reports whether x satisfies every constraint and bound
// within tolerance tol (integrality is not checked).
func (p *Problem) Feasible(x []float64, tol float64) bool {
	if len(x) != p.n {
		return false
	}
	for j := 0; j < p.n; j++ {
		if x[j] < p.lo[j]-tol || x[j] > p.up[j]+tol {
			return false
		}
	}
	for _, row := range p.rows {
		lhs := 0.0
		for _, c := range row.Coefs {
			lhs += c.Val * x[c.Var]
		}
		switch row.Op {
		case LE:
			if lhs > row.RHS+tol {
				return false
			}
		case GE:
			if lhs < row.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-row.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// AddConstraint appends a constraint row and returns its index.
// Duplicate variable entries are summed.
func (p *Problem) AddConstraint(coefs []Coef, op Op, rhs float64) (int, error) {
	merged := map[int]float64{}
	for _, c := range coefs {
		if c.Var < 0 || c.Var >= p.n {
			return 0, fmt.Errorf("lp: constraint references variable %d out of range", c.Var)
		}
		merged[c.Var] += c.Val
	}
	row := Constraint{Op: op, RHS: rhs}
	for v, coef := range merged {
		if coef != 0 {
			row.Coefs = append(row.Coefs, Coef{Var: v, Val: coef})
		}
	}
	p.rows = append(p.rows, row)
	return len(p.rows) - 1, nil
}

// Clone deep-copies the problem (used by branch-and-bound to tighten
// bounds per node without mutating the parent).
func (p *Problem) Clone() *Problem {
	q := &Problem{
		n:     p.n,
		obj:   append([]float64(nil), p.obj...),
		sense: p.sense,
		lo:    append([]float64(nil), p.lo...),
		up:    append([]float64(nil), p.up...),
		rows:  make([]Constraint, len(p.rows)),
	}
	// Constraint coefficient slices are never mutated after AddConstraint,
	// so sharing them is safe and keeps node cloning cheap.
	copy(q.rows, p.rows)
	return q
}

// Status reports the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal basic solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means no point satisfies the constraints.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded in the
	// optimization direction.
	StatusUnbounded
	// StatusIterLimit means the iteration limit was hit first.
	StatusIterLimit
)

// String names the status for logs and error messages.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	X          []float64 // variable values (length NumVars), valid when Optimal
	Objective  float64   // objective value in the problem's sense
	Iterations int
}

package lp

// Property-based numerics tests built on LP duality. Each case is
// constructed so the optimum is known exactly before the solver runs:
// draw A, a nonnegative primal point x* and a nonnegative dual point
// y*, set b = A·x* and c = Aᵀy*. For max cᵀx s.t. Ax ≤ b, x ≥ 0,
// weak duality gives cᵀx = y*ᵀAx ≤ y*ᵀb for every feasible x, and x*
// attains equality — so the optimum is exactly y*ᵀb, no solver needed
// to establish the ground truth. The minimization mirror flips the
// rows to ≥, and the equality variant pins cᵀx = y*ᵀb on the whole
// feasible set. Every solve is additionally checked against weak
// duality itself: the returned objective may never exceed the
// certificate value.

import (
	"math"
	"math/rand"
	"testing"
)

// dualityCase is one constructed LP with a provable optimum.
type dualityCase struct {
	m, n int
	a    [][]float64
	b    []float64 // A·x*
	c    []float64 // Aᵀ·y*
	opt  float64   // y*ᵀb, the exact optimum by construction
}

func genDualityCase(rng *rand.Rand, eq bool) dualityCase {
	dc := dualityCase{m: 1 + rng.Intn(6), n: 1 + rng.Intn(8)}
	dc.a = make([][]float64, dc.m)
	for i := range dc.a {
		dc.a[i] = make([]float64, dc.n)
		for j := range dc.a[i] {
			if rng.Intn(4) > 0 { // keep some structural zeros
				dc.a[i][j] = float64(rng.Intn(11) - 5)
			}
		}
	}
	xstar := make([]float64, dc.n)
	for j := range xstar {
		xstar[j] = float64(rng.Intn(11))
	}
	ystar := make([]float64, dc.m)
	for i := range ystar {
		v := float64(rng.Intn(6))
		if eq {
			// Equality rows admit free multipliers.
			v = float64(rng.Intn(11) - 5)
		}
		ystar[i] = v
	}
	dc.b = make([]float64, dc.m)
	dc.c = make([]float64, dc.n)
	for i := 0; i < dc.m; i++ {
		for j := 0; j < dc.n; j++ {
			dc.b[i] += dc.a[i][j] * xstar[j]
			dc.c[j] += ystar[i] * dc.a[i][j]
		}
		dc.opt += ystar[i] * dc.b[i]
	}
	return dc
}

func (dc dualityCase) problem(t *testing.T, op Op, sense Sense) *Problem {
	t.Helper()
	p := NewProblem(dc.n)
	if err := p.SetObjective(dc.c, sense); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dc.m; i++ {
		coefs := make([]Coef, 0, dc.n)
		for j, v := range dc.a[i] {
			if v != 0 {
				coefs = append(coefs, Coef{Var: j, Val: v})
			}
		}
		if _, err := p.AddConstraint(coefs, op, dc.b[i]); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestPropDualityMaximize: 300 random max-LE systems whose optimum is
// y*ᵀb by construction; the solver must find exactly that value, never
// exceed it (weak duality), and return a feasible point.
func TestPropDualityMaximize(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for k := 0; k < 300; k++ {
		dc := genDualityCase(rng, false)
		p := dc.problem(t, LE, Maximize)
		s := Solve(p)
		if s.Status != StatusOptimal {
			t.Fatalf("case %d: status %v, want optimal (constructed feasible+bounded)", k, s.Status)
		}
		checkFeasible(t, p, s.X)
		tol := 1e-6 * (1 + math.Abs(dc.opt))
		if s.Objective > dc.opt+tol {
			t.Fatalf("case %d: WEAK DUALITY VIOLATED: objective %g > certificate %g", k, s.Objective, dc.opt)
		}
		if s.Objective < dc.opt-tol {
			t.Fatalf("case %d: suboptimal: objective %g < known optimum %g", k, s.Objective, dc.opt)
		}
	}
}

// TestPropDualityMinimize mirrors the construction with ≥ rows: for
// min cᵀx s.t. Ax ≥ b, x ≥ 0 the optimum is again exactly y*ᵀb, now
// a floor the solver may never undercut.
func TestPropDualityMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(809))
	for k := 0; k < 300; k++ {
		dc := genDualityCase(rng, false)
		p := dc.problem(t, GE, Minimize)
		s := Solve(p)
		if s.Status != StatusOptimal {
			t.Fatalf("case %d: status %v, want optimal", k, s.Status)
		}
		checkFeasible(t, p, s.X)
		tol := 1e-6 * (1 + math.Abs(dc.opt))
		if s.Objective < dc.opt-tol {
			t.Fatalf("case %d: WEAK DUALITY VIOLATED: objective %g < certificate %g", k, s.Objective, dc.opt)
		}
		if s.Objective > dc.opt+tol {
			t.Fatalf("case %d: suboptimal: objective %g > known optimum %g", k, s.Objective, dc.opt)
		}
	}
}

// TestEqualityArtificialPinnedRegression pins the simplex bug the
// equality property corpus surfaced: when the all-at-lower-bound start
// is already feasible, phase 1 is skipped, and artificial columns used
// to keep an infinite upper bound — so phase 2 could ride a basic
// artificial upward and min −15·x s.t. −5·x = 0 reported a spurious
// unbounded ray instead of its optimum 0.
func TestEqualityArtificialPinnedRegression(t *testing.T) {
	p := NewProblem(1)
	if err := p.SetObjective([]float64{-15}, Minimize); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddConstraint([]Coef{{Var: 0, Val: -5}}, EQ, 0); err != nil {
		t.Fatal(err)
	}
	s := Solve(p)
	if s.Status != StatusOptimal || math.Abs(s.Objective) > 1e-9 {
		t.Fatalf("got %v obj=%g, want optimal 0", s.Status, s.Objective)
	}
}

// TestPropDualityEquality: with Ax = b and c = Aᵀy*, the objective is
// the constant y*ᵀb on the entire feasible set — any optimal solve in
// either sense must return exactly the certificate value.
func TestPropDualityEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(810))
	for k := 0; k < 200; k++ {
		dc := genDualityCase(rng, true)
		for _, sense := range []Sense{Maximize, Minimize} {
			p := dc.problem(t, EQ, sense)
			s := Solve(p)
			if s.Status != StatusOptimal {
				t.Fatalf("case %d/%v: status %v, want optimal (x* is feasible)", k, sense, s.Status)
			}
			checkFeasible(t, p, s.X)
			tol := 1e-6 * (1 + math.Abs(dc.opt))
			if math.Abs(s.Objective-dc.opt) > tol {
				t.Fatalf("case %d/%v: degenerate objective drifted: %g != %g", k, sense, s.Objective, dc.opt)
			}
		}
	}
}

package template

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/minidb"
	"repro/internal/paql"
)

const mealText = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	WHERE R.gluten = 'free' AND R.calories <= 900
	SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 1000 AND 2400
	MAXIMIZE SUM(P.protein)`

func TestFromTextDecomposesSlots(t *testing.T) {
	tpl, err := FromText(mealText)
	if err != nil {
		t.Fatal(err)
	}
	if len(tpl.Base) != 2 {
		t.Errorf("base slots = %v", tpl.Base)
	}
	if len(tpl.Globals) != 2 {
		t.Errorf("global slots = %v", tpl.Globals)
	}
	if tpl.ObjectiveSense != "MAXIMIZE" || !strings.Contains(tpl.Objective, "SUM") {
		t.Errorf("objective = %s %s", tpl.ObjectiveSense, tpl.Objective)
	}
}

func TestToPaQLRoundTrip(t *testing.T) {
	tpl, err := FromText(mealText)
	if err != nil {
		t.Fatal(err)
	}
	q, err := tpl.Parse()
	if err != nil {
		t.Fatalf("template does not re-parse: %v\n%s", err, tpl.ToPaQL())
	}
	if q.Table != "recipes" || q.Objective == nil || q.SuchThat == nil || q.Where == nil {
		t.Error("round trip lost clauses")
	}
	// and the round-tripped query still runs
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 40, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	res, err := core.Evaluate(db, tpl.ToPaQL(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 1 {
		t.Errorf("round-tripped query found %d packages", len(res.Packages))
	}
}

func TestSlotEditing(t *testing.T) {
	tpl := New("recipes", "R")
	if err := tpl.AddBase("R.gluten = 'free'"); err != nil {
		t.Fatal(err)
	}
	if err := tpl.AddBase("bogus ("); err == nil {
		t.Error("bad base should fail")
	}
	if err := tpl.AddGlobal("COUNT(*) = 3"); err != nil {
		t.Fatal(err)
	}
	if err := tpl.AddGlobal("SUM(P.calories WHERE P.mealtype = 'snack') <= 500"); err != nil {
		t.Fatalf("filtered aggregate slot: %v", err)
	}
	if err := tpl.AddGlobal("NOT VALID ("); err == nil {
		t.Error("bad global should fail")
	}
	if err := tpl.SetObjective("maximize", "SUM(P.protein)"); err != nil {
		t.Fatal(err)
	}
	if err := tpl.SetObjective("upward", "SUM(P.protein)"); err == nil {
		t.Error("bad sense should fail")
	}
	if err := tpl.SetObjective("MINIMIZE", "SUM(("); err == nil {
		t.Error("bad objective expression should fail")
	}
	if err := tpl.RemoveGlobal(1); err != nil {
		t.Fatal(err)
	}
	if err := tpl.RemoveGlobal(7); err == nil {
		t.Error("out-of-range removal should fail")
	}
	if err := tpl.RemoveBase(0); err != nil {
		t.Fatal(err)
	}
	if err := tpl.RemoveBase(0); err == nil {
		t.Error("removing from empty base should fail")
	}
	tpl.ClearObjective()
	if tpl.ObjectiveSense != "" {
		t.Error("objective not cleared")
	}
	text := tpl.ToPaQL()
	if _, err := paql.Parse(text); err != nil {
		t.Errorf("edited template does not parse: %v\n%s", err, text)
	}
}

func TestRepeatAndLimitSurvive(t *testing.T) {
	tpl, err := FromText(`SELECT PACKAGE(R) AS P FROM recipes R REPEAT 2 SUCH THAT COUNT(*) = 4 LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Repeat != 2 || tpl.Limit != 3 {
		t.Errorf("repeat=%d limit=%d", tpl.Repeat, tpl.Limit)
	}
	q, err := tpl.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if q.Repeat != 2 || q.Limit != 3 {
		t.Errorf("round trip: repeat=%d limit=%d", q.Repeat, q.Limit)
	}
}

func TestRenderShowsSampleAndSlots(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 40, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	res, err := core.Evaluate(db, mealText, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tpl, _ := FromText(mealText)
	tab, _ := db.Table("recipes")
	var sb strings.Builder
	tpl.Render(&sb, tab.Schema, res.Packages[0], []string{"name", "calories", "protein"})
	out := sb.String()
	for _, want := range []string{"Sample package:", "calories", "Base constraints", "Global constraints", "MAXIMIZE", "[g0]", "Aggregates:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// render without a sample
	sb.Reset()
	tpl.Render(&sb, tab.Schema, nil, nil)
	if !strings.Contains(sb.String(), "Base constraints") {
		t.Error("sample-less render broken")
	}
}

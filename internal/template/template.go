// Package template implements the paper's §3.1 package template: a
// structured, editable view of a package query — base-constraint slots,
// global-constraint slots, an objective slot, and a sample package
// rendered as a table. The template is deliberately "not as powerful as
// the PaQL language itself" but compiles back to PaQL, so the visual
// interface and the language stay interchangeable.
package template

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/paql"
	"repro/internal/parse"
	"repro/internal/schema"
	"repro/internal/value"
)

// Template is an editable package-query specification.
type Template struct {
	Table  string
	RelVar string
	PkgVar string
	Repeat int // -1 = unlimited, 0 = no duplicates, k = up to k repeats

	Base    []string // base constraint slots (PaQL expressions over the relation)
	Globals []string // global constraint slots (aggregate comparisons)

	ObjectiveSense string // "", "MAXIMIZE" or "MINIMIZE"
	Objective      string // aggregate expression

	Limit int
}

// New starts an empty template over a relation.
func New(table, relVar string) *Template {
	if relVar == "" {
		relVar = "R"
	}
	return &Template{Table: table, RelVar: relVar, PkgVar: "P"}
}

// FromQuery decomposes a parsed query into template slots: the SUCH
// THAT formula splits at top-level ANDs, one slot per conjunct.
func FromQuery(q *paql.Query) *Template {
	t := &Template{
		Table: q.Table, RelVar: q.RelVar, PkgVar: q.PkgVar,
		Repeat: q.Repeat, Limit: q.Limit,
	}
	for _, c := range conjuncts(q.Where) {
		t.Base = append(t.Base, c.String())
	}
	for _, c := range conjuncts(q.SuchThat) {
		t.Globals = append(t.Globals, c.String())
	}
	if q.Objective != nil {
		t.ObjectiveSense = q.Objective.Sense.String()
		t.Objective = q.Objective.Expr.String()
	}
	return t
}

// FromText parses PaQL text into a template.
func FromText(text string) (*Template, error) {
	q, err := paql.Parse(text)
	if err != nil {
		return nil, err
	}
	return FromQuery(q), nil
}

func conjuncts(e expr.Expr) []expr.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*expr.Binary); ok && b.Op == expr.OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []expr.Expr{e}
}

// AddBase validates and appends a base-constraint slot.
func (t *Template) AddBase(s string) error {
	if _, err := parse.ParseExprString(s); err != nil {
		return fmt.Errorf("template: base constraint: %w", err)
	}
	t.Base = append(t.Base, s)
	return nil
}

// AddGlobal validates and appends a global-constraint slot. Validation
// round-trips the fragment through the PaQL parser so aggregate syntax
// (including filtered aggregates) is accepted.
func (t *Template) AddGlobal(s string) error {
	probe := fmt.Sprintf("SELECT PACKAGE(%s) AS %s FROM %s %s SUCH THAT %s",
		t.RelVar, t.PkgVar, t.Table, t.RelVar, s)
	if _, err := paql.Parse(probe); err != nil {
		return fmt.Errorf("template: global constraint: %w", err)
	}
	t.Globals = append(t.Globals, s)
	return nil
}

// SetObjective validates and installs the objective slot.
func (t *Template) SetObjective(sense, exprText string) error {
	up := strings.ToUpper(strings.TrimSpace(sense))
	if up != "MAXIMIZE" && up != "MINIMIZE" {
		return fmt.Errorf("template: objective sense must be MAXIMIZE or MINIMIZE, got %q", sense)
	}
	probe := fmt.Sprintf("SELECT PACKAGE(%s) AS %s FROM %s %s %s %s",
		t.RelVar, t.PkgVar, t.Table, t.RelVar, up, exprText)
	if _, err := paql.Parse(probe); err != nil {
		return fmt.Errorf("template: objective: %w", err)
	}
	t.ObjectiveSense, t.Objective = up, exprText
	return nil
}

// ClearObjective removes the objective slot.
func (t *Template) ClearObjective() { t.ObjectiveSense, t.Objective = "", "" }

// RemoveBase deletes base slot i.
func (t *Template) RemoveBase(i int) error {
	if i < 0 || i >= len(t.Base) {
		return fmt.Errorf("template: base slot %d out of range", i)
	}
	t.Base = append(t.Base[:i], t.Base[i+1:]...)
	return nil
}

// RemoveGlobal deletes global slot i.
func (t *Template) RemoveGlobal(i int) error {
	if i < 0 || i >= len(t.Globals) {
		return fmt.Errorf("template: global slot %d out of range", i)
	}
	t.Globals = append(t.Globals[:i], t.Globals[i+1:]...)
	return nil
}

// ToPaQL compiles the template back to a PaQL query string.
func (t *Template) ToPaQL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT PACKAGE(%s) AS %s\nFROM %s %s", t.RelVar, t.PkgVar, t.Table, t.RelVar)
	if t.Repeat > 0 {
		fmt.Fprintf(&b, " REPEAT %d", t.Repeat)
	}
	if len(t.Base) > 0 {
		fmt.Fprintf(&b, "\nWHERE %s", strings.Join(t.Base, " AND "))
	}
	if len(t.Globals) > 0 {
		fmt.Fprintf(&b, "\nSUCH THAT %s", strings.Join(t.Globals, " AND "))
	}
	if t.ObjectiveSense != "" {
		fmt.Fprintf(&b, "\n%s %s", t.ObjectiveSense, t.Objective)
	}
	if t.Limit > 1 {
		fmt.Fprintf(&b, "\nLIMIT %d", t.Limit)
	}
	return b.String()
}

// Parse compiles and parses the template (a convenience that also
// validates slot composition).
func (t *Template) Parse() (*paql.Query, error) {
	return paql.Parse(t.ToPaQL())
}

// Render draws the template as the demo's tabular view: the sample
// package (when given), then the constraint slots and objective. cols
// limits which columns of the sample are shown (nil = all).
func (t *Template) Render(w io.Writer, sc schema.Schema, sample *core.Package, cols []string) {
	fmt.Fprintf(w, "Package template over %s (as %s)\n", t.Table, t.RelVar)
	fmt.Fprintln(w, strings.Repeat("=", 52))
	if sample != nil {
		ords := make([]int, 0, sc.Len())
		if cols == nil {
			for i := range sc.Cols {
				ords = append(ords, i)
			}
		} else {
			for _, name := range cols {
				if i, err := sc.IndexOf("", name); err == nil {
					ords = append(ords, i)
				}
			}
		}
		headers := make([]string, len(ords))
		widths := make([]int, len(ords))
		for i, o := range ords {
			headers[i] = sc.Cols[o].Name
			widths[i] = len(headers[i])
		}
		cells := make([][]string, len(sample.Rows))
		for r, row := range sample.Rows {
			cells[r] = make([]string, len(ords))
			for i, o := range ords {
				s := row[o].String()
				if len(s) > 24 {
					s = s[:21] + "..."
				}
				cells[r][i] = s
				if len(s) > widths[i] {
					widths[i] = len(s)
				}
			}
		}
		line := func(parts []string) {
			for i, p := range parts {
				if i > 0 {
					fmt.Fprint(w, "  ")
				}
				fmt.Fprintf(w, "%-*s", widths[i], p)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "Sample package:")
		line(headers)
		for _, row := range cells {
			line(row)
		}
		fmt.Fprintln(w)
		if len(sample.AggValues) > 0 {
			fmt.Fprintln(w, "Aggregates:")
			for _, a := range sortedKeys(sample.AggValues) {
				fmt.Fprintf(w, "  %-36s %s\n", a, sample.AggValues[a])
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "Base constraints (each tuple):")
	if len(t.Base) == 0 {
		fmt.Fprintln(w, "  (none)")
	}
	for i, c := range t.Base {
		fmt.Fprintf(w, "  [b%d] %s\n", i, c)
	}
	fmt.Fprintln(w, "Global constraints (whole package):")
	if len(t.Globals) == 0 {
		fmt.Fprintln(w, "  (none)")
	}
	for i, c := range t.Globals {
		fmt.Fprintf(w, "  [g%d] %s\n", i, c)
	}
	if t.ObjectiveSense != "" {
		fmt.Fprintf(w, "Objective: %s %s\n", t.ObjectiveSense, t.Objective)
	} else {
		fmt.Fprintln(w, "Objective: (none)")
	}
}

func sortedKeys(m map[string]value.V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Package catalog maintains per-table statistics for the planner: row
// counts, per-attribute min/max/null-fraction/distinct estimates, and a
// write rate derived from minidb's delta log. Statistics are computed by
// a full scan the first time a table is seen and then kept fresh
// incrementally — on every probe the catalog asks the table for the
// delta since the last snapshot and folds appended rows into the
// accumulators, falling back to a full rescan only when the delta aged
// out of the bounded log or grew past a fraction of the table.
//
// The catalog is the planner's "query planner binds against the
// catalog" half of a classic planner split: it answers "how big is this
// table, what do its columns look like, and how hot is it" without the
// planner ever touching rows itself.
package catalog

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/minidb"
	"repro/internal/schema"
)

// distinctCap bounds the per-attribute distinct-value hash set. Beyond
// it the estimate stops growing and AttrStats.DistinctCapped reports
// that the true count is at least the cap.
const distinctCap = 4096

// rescanFrac is the fraction of the table the accumulated delta may
// reach before the catalog discards its incremental accumulators and
// rescans from scratch. Deletes are merged approximately (counts only),
// so unbounded drift is cut off here.
const rescanFrac = 0.5

// writeRateWindow bounds how far back the write-rate estimate looks:
// version observations older than the window are dropped, so a table
// that went quiet decays toward a zero rate instead of remembering a
// burst forever.
const writeRateWindow = 5 * time.Minute

// AttrStats summarizes one column of a table.
type AttrStats struct {
	// Name is the unqualified column name.
	Name string `json:"name"`
	// Numeric reports whether the column's declared type is INT or FLOAT.
	Numeric bool `json:"numeric"`
	// Min and Max bound the non-NULL values seen (numeric columns only;
	// both zero when the column has no non-NULL numeric value).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// NullFrac estimates the fraction of rows whose cell is NULL.
	NullFrac float64 `json:"nullFrac"`
	// Distinct estimates the number of distinct non-NULL values, capped
	// at an internal bound.
	Distinct int `json:"distinct"`
	// DistinctCapped reports that the estimate hit the cap and the true
	// count is at least Distinct.
	DistinctCapped bool `json:"distinctCapped,omitempty"`
}

// TableStats is one table's statistics snapshot.
type TableStats struct {
	// Table is the table's declared name.
	Table string `json:"table"`
	// Rows is the current row count.
	Rows int `json:"rows"`
	// Version is the table's delta-log version the snapshot describes.
	Version uint64 `json:"version"`
	// Attrs holds per-column statistics in schema order.
	Attrs []AttrStats `json:"attrs,omitempty"`
	// WriteRate estimates write statements per second over the recent
	// observation window (0 when the table looks read-only).
	WriteRate float64 `json:"writeRate"`
	// DeltaRows counts rows inserted or deleted since the catalog's last
	// full scan of the table.
	DeltaRows int `json:"deltaRows"`
	// DeltaFrac is DeltaRows over the current row count (0 when the
	// table is empty), the planner's patch-vs-rebuild signal.
	DeltaFrac float64 `json:"deltaFrac"`
}

// attrAcc accumulates one column's statistics incrementally.
type attrAcc struct {
	name     string
	numeric  bool
	min, max float64
	seenNum  bool // any non-NULL numeric value folded in
	nulls    int  // NULL cells observed (appends since scan included)
	observed int  // rows observed (scan + appends; deletes not subtracted)
	distinct map[uint64]struct{}
	capped   bool
}

// entry is the cached per-table state.
type entry struct {
	version   uint64 // table version the stats describe
	rows      int
	attrs     []attrAcc
	deltaRows int // inserts+deletes folded in since the last full scan
	samples   []sample
}

// sample is one (time, version) observation for the write-rate estimate.
type sample struct {
	t time.Time
	v uint64
}

// Catalog caches statistics for the tables of one DB. It is safe for
// concurrent use.
type Catalog struct {
	mu     sync.Mutex
	db     *minidb.DB
	tables map[string]*entry
	now    func() time.Time
}

// New builds an empty catalog over db. Statistics are computed lazily,
// on first Stats probe per table.
func New(db *minidb.DB) *Catalog {
	return &Catalog{db: db, tables: make(map[string]*entry), now: time.Now}
}

// SetClock replaces the catalog's time source; tests use it to make
// write-rate estimates deterministic.
func (c *Catalog) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// Stats returns a fresh statistics snapshot for the named table
// (case-insensitive), refreshing incrementally against the table's
// delta log first. ok is false for unknown tables.
func (c *Catalog) Stats(table string) (TableStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.db.Table(table)
	if !ok {
		delete(c.tables, strings.ToLower(table))
		return TableStats{}, false
	}
	key := strings.ToLower(t.Name)
	e := c.tables[key]
	if fault.Check("catalog.refresh") != nil {
		// Refresh rung: statistics advise the planner, they never gate
		// correctness — a failed refresh serves the stale snapshot when
		// one exists and reports "no stats" otherwise (the planner then
		// falls back to a minimal row-count snapshot).
		if e == nil {
			return TableStats{}, false
		}
		e.observe(c.now())
		return e.snapshot(t.Name), true
	}
	if e == nil {
		e = &entry{}
		c.scan(e, t)
		c.tables[key] = e
	} else if e.version != t.Version() {
		c.refresh(e, t)
	}
	e.observe(c.now())
	return e.snapshot(t.Name), true
}

// All returns snapshots for every table in the DB, sorted by name.
func (c *Catalog) All() []TableStats {
	names := c.db.TableNames()
	sort.Strings(names)
	out := make([]TableStats, 0, len(names))
	for _, n := range names {
		if ts, ok := c.Stats(n); ok {
			out = append(out, ts)
		}
	}
	return out
}

// scan recomputes e from a full pass over the table.
func (c *Catalog) scan(e *entry, t *minidb.Table) {
	e.version = t.Version()
	e.rows = len(t.Rows)
	e.deltaRows = 0
	e.attrs = newAccs(t.Schema)
	for _, r := range t.Rows {
		foldRow(e.attrs, r)
	}
}

// refresh folds the table's delta since e.version into the
// accumulators. Appended rows are scanned and merged exactly; deletes
// only adjust the row count (min/max/distinct cannot shrink without a
// rescan), so once the accumulated delta passes rescanFrac of the
// table, refresh falls back to a full scan.
func (c *Catalog) refresh(e *entry, t *minidb.Table) {
	d, ok := t.DeltaSince(e.version)
	if !ok || len(e.attrs) != t.Schema.Len() {
		c.scan(e, t)
		return
	}
	appended := len(t.Rows) - d.AppendedStart
	e.deltaRows += len(d.Deleted) + appended
	if n := len(t.Rows); n == 0 || float64(e.deltaRows) > rescanFrac*float64(n) {
		c.scan(e, t)
		return
	}
	for _, r := range t.Rows[d.AppendedStart:] {
		foldRow(e.attrs, r)
	}
	e.version = t.Version()
	e.rows = len(t.Rows)
}

// observe appends a (now, version) sample for the write-rate estimate
// and drops samples older than the window.
func (e *entry) observe(now time.Time) {
	if n := len(e.samples); n > 0 && e.samples[n-1].v == e.version && now.Sub(e.samples[n-1].t) < time.Second {
		return
	}
	e.samples = append(e.samples, sample{t: now, v: e.version})
	cut := 0
	for cut < len(e.samples)-1 && now.Sub(e.samples[cut].t) > writeRateWindow {
		cut++
	}
	if cut > 0 {
		e.samples = append([]sample(nil), e.samples[cut:]...)
	}
}

// writeRate estimates write statements per second from the sample ring:
// version delta over elapsed time between the oldest retained sample
// and now.
func (e *entry) writeRate(now time.Time) float64 {
	if len(e.samples) == 0 {
		return 0
	}
	first := e.samples[0]
	elapsed := now.Sub(first.t).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(e.version-first.v) / elapsed
}

// snapshot renders the public view of the entry.
func (e *entry) snapshot(name string) TableStats {
	ts := TableStats{
		Table:     name,
		Rows:      e.rows,
		Version:   e.version,
		DeltaRows: e.deltaRows,
	}
	if n := len(e.samples); n > 0 {
		ts.WriteRate = e.writeRate(e.samples[n-1].t)
	}
	if e.rows > 0 {
		ts.DeltaFrac = float64(e.deltaRows) / float64(e.rows)
	}
	ts.Attrs = make([]AttrStats, len(e.attrs))
	for i := range e.attrs {
		a := &e.attrs[i]
		as := AttrStats{
			Name:           a.name,
			Numeric:        a.numeric,
			Distinct:       len(a.distinct),
			DistinctCapped: a.capped,
		}
		if a.seenNum {
			as.Min, as.Max = a.min, a.max
		}
		if a.observed > 0 {
			as.NullFrac = float64(a.nulls) / float64(a.observed)
		}
		ts.Attrs[i] = as
	}
	return ts
}

// newAccs builds zeroed accumulators for a schema.
func newAccs(s schema.Schema) []attrAcc {
	accs := make([]attrAcc, s.Len())
	for i, col := range s.Cols {
		accs[i] = attrAcc{
			name:     col.Name,
			numeric:  col.Type.Numeric(),
			distinct: make(map[uint64]struct{}),
		}
	}
	return accs
}

// foldRow merges one row into the accumulators.
func foldRow(accs []attrAcc, r schema.Row) {
	for i := range accs {
		a := &accs[i]
		a.observed++
		if i >= len(r) || r[i].IsNull() {
			a.nulls++
			continue
		}
		if f, ok := r[i].AsFloat(); ok && a.numeric {
			if !a.seenNum || f < a.min {
				a.min = f
			}
			if !a.seenNum || f > a.max {
				a.max = f
			}
			a.seenNum = true
		}
		if a.capped {
			continue
		}
		a.distinct[r[i].Hash()] = struct{}{}
		if len(a.distinct) >= distinctCap {
			a.capped = true
		}
	}
}

package catalog

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/minidb"
)

// newDB builds a db with one table "t" holding n rows (id INT, v FLOAT,
// s TEXT) where v = id and s cycles over 3 values; every 10th v is NULL.
func newDB(t *testing.T, n int) *minidb.DB {
	t.Helper()
	db := minidb.New()
	mustExec(t, db, "CREATE TABLE t (id INTEGER, v FLOAT, s TEXT)")
	for i := 0; i < n; i++ {
		v := fmt.Sprintf("%d.5", i)
		if i%10 == 0 {
			v = "NULL"
		}
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, %s, 's%d')", i, v, i%3))
	}
	return db
}

func mustExec(t *testing.T, db *minidb.DB, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

func TestStatsFullScan(t *testing.T) {
	db := newDB(t, 30)
	c := New(db)
	ts, ok := c.Stats("T") // case-insensitive
	if !ok {
		t.Fatal("table not found")
	}
	if ts.Rows != 30 || ts.Table != "t" {
		t.Fatalf("rows=%d table=%q", ts.Rows, ts.Table)
	}
	if len(ts.Attrs) != 3 {
		t.Fatalf("attrs=%d", len(ts.Attrs))
	}
	id := ts.Attrs[0]
	if !id.Numeric || id.Min != 0 || id.Max != 29 || id.NullFrac != 0 || id.Distinct != 30 {
		t.Fatalf("id stats: %+v", id)
	}
	v := ts.Attrs[1]
	if v.Min != 1.5 || v.Max != 29.5 {
		t.Fatalf("v min/max: %+v", v)
	}
	if got, want := v.NullFrac, 3.0/30.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("v nullfrac: %g want %g", got, want)
	}
	s := ts.Attrs[2]
	if s.Numeric || s.Distinct != 3 {
		t.Fatalf("s stats: %+v", s)
	}
	if ts.DeltaRows != 0 || ts.DeltaFrac != 0 {
		t.Fatalf("fresh scan should report no delta: %+v", ts)
	}
}

func TestStatsUnknownTable(t *testing.T) {
	c := New(minidb.New())
	if _, ok := c.Stats("nope"); ok {
		t.Fatal("expected !ok")
	}
}

func TestIncrementalAppendMerges(t *testing.T) {
	db := newDB(t, 20)
	c := New(db)
	before, _ := c.Stats("t")
	mustExec(t, db, "INSERT INTO t VALUES (100, 999.5, 's9')")
	after, _ := c.Stats("t")
	if after.Rows != 21 || after.Version != before.Version+1 {
		t.Fatalf("rows=%d version=%d (before %d)", after.Rows, after.Version, before.Version)
	}
	if after.Attrs[0].Max != 100 || after.Attrs[1].Max != 999.5 {
		t.Fatalf("max not merged: %+v", after.Attrs[:2])
	}
	if after.Attrs[2].Distinct != 4 {
		t.Fatalf("distinct not merged: %+v", after.Attrs[2])
	}
	if after.DeltaRows != 1 {
		t.Fatalf("deltaRows=%d", after.DeltaRows)
	}
	if after.DeltaFrac <= 0 || after.DeltaFrac > 0.1 {
		t.Fatalf("deltaFrac=%g", after.DeltaFrac)
	}
}

func TestDeleteTriggersRescanPastBudget(t *testing.T) {
	db := newDB(t, 40)
	c := New(db)
	c.Stats("t")
	// Delete over half the table: the accumulated delta passes
	// rescanFrac and stats must be recomputed from scratch, shrinking
	// the max again.
	mustExec(t, db, "DELETE FROM t WHERE id >= 10")
	ts, _ := c.Stats("t")
	if ts.Rows != 10 {
		t.Fatalf("rows=%d", ts.Rows)
	}
	if ts.Attrs[0].Max != 9 {
		t.Fatalf("rescan should shrink max: %+v", ts.Attrs[0])
	}
	if ts.DeltaRows != 0 {
		t.Fatalf("rescan should reset delta: %+v", ts)
	}
}

func TestSmallDeleteStaysIncremental(t *testing.T) {
	db := newDB(t, 40)
	c := New(db)
	c.Stats("t")
	mustExec(t, db, "DELETE FROM t WHERE id = 39")
	ts, _ := c.Stats("t")
	if ts.Rows != 39 {
		t.Fatalf("rows=%d", ts.Rows)
	}
	// Deletes merge approximately: the old max survives until a rescan.
	if ts.Attrs[0].Max != 39 {
		t.Fatalf("expected stale max 39, got %+v", ts.Attrs[0])
	}
	if ts.DeltaRows != 1 || ts.DeltaFrac == 0 {
		t.Fatalf("delta: %+v", ts)
	}
}

func TestWriteRate(t *testing.T) {
	db := newDB(t, 5)
	c := New(db)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	ts, _ := c.Stats("t")
	if ts.WriteRate != 0 {
		t.Fatalf("single sample should give rate 0, got %g", ts.WriteRate)
	}
	// 10 writes over 10 seconds → 1 write/s.
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 1.0, 'x')", 200+i))
	}
	ts, _ = c.Stats("t")
	if ts.WriteRate < 0.9 || ts.WriteRate > 1.1 {
		t.Fatalf("writeRate=%g want ≈1", ts.WriteRate)
	}
	// Quiet period: the rate decays toward zero as time passes.
	now = now.Add(2 * time.Minute)
	ts, _ = c.Stats("t")
	if ts.WriteRate > 0.1 {
		t.Fatalf("writeRate=%g should decay", ts.WriteRate)
	}
	// Past the window old samples drop entirely → read-only again.
	now = now.Add(writeRateWindow + time.Minute)
	c.Stats("t")
	now = now.Add(time.Second)
	ts, _ = c.Stats("t")
	if ts.WriteRate != 0 {
		t.Fatalf("writeRate=%g want 0 after window", ts.WriteRate)
	}
}

func TestDistinctCap(t *testing.T) {
	db := minidb.New()
	mustExec(t, db, "CREATE TABLE big (id INTEGER)")
	for i := 0; i < distinctCap+100; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO big VALUES (%d)", i))
	}
	c := New(db)
	ts, _ := c.Stats("big")
	a := ts.Attrs[0]
	if !a.DistinctCapped || a.Distinct != distinctCap {
		t.Fatalf("distinct=%d capped=%v", a.Distinct, a.DistinctCapped)
	}
}

func TestAll(t *testing.T) {
	db := newDB(t, 3)
	mustExec(t, db, "CREATE TABLE aaa (x INTEGER)")
	c := New(db)
	all := c.All()
	if len(all) != 2 || all[0].Table != "aaa" || all[1].Table != "t" {
		t.Fatalf("all=%+v", all)
	}
}

func TestDroppedTableForgotten(t *testing.T) {
	db := newDB(t, 3)
	c := New(db)
	c.Stats("t")
	if err := db.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Stats("t"); ok {
		t.Fatal("dropped table should report !ok")
	}
}

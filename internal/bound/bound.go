// Package bound computes certified dual bounds for package queries.
//
// A package query is an integer program: pick a multiplicity m_t ≥ 0
// for every candidate tuple t subject to linear aggregate constraints,
// optimizing a linear objective. Dropping integrality gives the LP
// relaxation, whose optimum is an always-valid dual bound — for a
// maximization no integral package can beat it, for a minimization
// none can undercut it — so the true optimum provably lies between
// the bound and any feasible incumbent's objective.
//
// The engine works over *groups* of candidates so the same machinery
// covers two regimes:
//
//   - Raw candidates: one singleton group per tuple. The relaxation is
//     the exact LP relaxation of the query's MILP — the tightest bound
//     an LP can give.
//   - Partition-tree leaves: one group per leaf, with the leaf's tuple
//     set as members. Constraint coefficients collapse to the safe end
//     of the group's coefficient range (per-group minimum for ≤ rows,
//     maximum for ≥ rows; the objective takes the optimistic end), so
//     the LP has one variable per leaf instead of one per tuple and
//     stays small at any scale. The proof obligation is one line: with
//     w_t ≥ lo_g and m_t ≥ 0, lo_g·Σm_t ≤ Σw_t·m_t, so every integral
//     feasible package maps to a feasible point of the grouped LP.
//
// Disjunctive queries bound each DNF branch independently and merge
// with Best: the union's optimum is bounded by the best branch bound.
// A branch whose relaxation is infeasible contributes nothing — but an
// infeasible relaxation is never treated as a proof that the original
// query is infeasible, because the engine's lowering of strict
// comparisons is epsilon-tightened.
//
// All certified bounds are padded by a relative numerical safety
// margin in the safe direction (see Pad) so simplex round-off cannot
// flip a true statement into a false one.
package bound

import (
	"context"
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/lp"
	"repro/internal/translate"
)

// Group is one variable of the relaxation: a set of candidate tuple
// indexes whose total multiplicity is relaxed to a single continuous
// variable bounded by [Lo, Hi].
type Group struct {
	// Tuples lists the candidate indexes the group covers. Constraint
	// and objective coefficients for the group are min/max reductions
	// over these indexes.
	Tuples []int
	// Lo is the least total multiplicity the group must carry — the
	// number of pinned tuples inside it.
	Lo float64
	// Hi caps the group's total multiplicity (tuple count × per-tuple
	// cap, shrunk to the admissible supply); lp.Inf means uncapped.
	Hi float64
}

// Outcome is the result of one relaxation solve.
type Outcome struct {
	// Bound is the certified dual bound on the objective, in the
	// problem's sense: an upper bound for a maximization, a lower
	// bound for a minimization. Valid only when Certified.
	Bound float64
	// Certified reports that the relaxation solved to proven
	// optimality, so Bound is a true dual bound.
	Certified bool
	// Infeasible reports that the relaxation itself had no feasible
	// point. This bounds nothing about the original query (the
	// lowering of strict comparisons is epsilon-tightened), but for a
	// DNF branch it means the branch contributes no candidate optimum.
	Infeasible bool
	// Iterations counts simplex iterations spent on the solve.
	Iterations int
}

// Interval is a certified objective interval: the true optimum lies
// between Found (a feasible incumbent's objective) and Bound (the dual
// bound), whichever order the sense puts them in.
type Interval struct {
	// Found is the incumbent package's objective value.
	Found float64
	// Bound is the certified dual bound.
	Bound float64
	// Certified reports whether Bound is proven; an uncertified
	// interval is just the incumbent with no error bar.
	Certified bool
}

// Gap returns the relative width of the interval,
// |Found − Bound| / max(1, |Found|) — the certified relative
// optimality gap when the interval is certified. The max(1, ·)
// denominator keeps the figure meaningful when the objective is near
// zero or flips sign across the interval: instead of dividing by ~0
// (which would report an arbitrarily huge "relative" gap for a tiny
// absolute one), the gap degrades to the interval's absolute width.
// FormatGap renders that distinction explicitly.
func (iv Interval) Gap() float64 {
	return math.Abs(iv.Found-iv.Bound) / math.Max(1, math.Abs(iv.Found))
}

// FormatGap renders the certified gap for display — the one shared
// helper every surface (FormatResult, the CLI, the HTTP stats and UI)
// uses, so the figure is rounded the same way everywhere. With
// |Found| ≥ 1 the gap is a true relative gap and renders as a
// percentage; below that the max(1, |objective|) denominator clamps to
// 1, the figure is really the interval's absolute width, and the
// rendering says so instead of printing a misleading percent.
func (iv Interval) FormatGap() string {
	g := iv.Gap()
	if math.Abs(iv.Found) >= 1 {
		return fmt.Sprintf("%.2f%%", 100*g)
	}
	return fmt.Sprintf("%.4g abs (|objective| < 1)", g)
}

// FormatInterval renders the full certified statement,
// "objective ∈ [lo, hi] (gap …)", with the endpoints ordered
// regardless of sense.
func (iv Interval) FormatInterval() string {
	lo, hi := iv.Found, iv.Bound
	if lo > hi {
		lo, hi = hi, lo
	}
	return fmt.Sprintf("objective ∈ [%.6g, %.6g] (gap %s)", lo, hi, iv.FormatGap())
}

// Pad inflates a dual bound by a relative numerical safety margin in
// the safe direction for the sense (up for a maximization bound, down
// for a minimization bound), so floating-point round-off in the solve
// cannot make the bound claim more than was proven.
func Pad(b float64, sense lp.Sense) float64 {
	margin := 1e-7 * (1 + math.Abs(b))
	if sense == lp.Maximize {
		return b + margin
	}
	return b - margin
}

// Candidates builds the singleton grouping over n raw candidates: one
// group per tuple with Lo = 1 for pinned indexes and Hi = maxMult
// (uncapped when maxMult ≤ 0). The resulting relaxation is the exact
// LP relaxation of the query's MILP.
func Candidates(n, maxMult int, pins map[int]bool) []Group {
	hi := lp.Inf
	if maxMult > 0 {
		hi = float64(maxMult)
	}
	groups := make([]Group, n)
	for i := range groups {
		groups[i] = Group{Tuples: []int{i}, Hi: hi}
		if pins[i] {
			groups[i].Lo = 1
		}
	}
	return groups
}

// Relax builds the grouped LP relaxation of a conjunction of linear
// atoms: one continuous variable per group bounded by [Lo, Hi], each ≤
// row taking the per-group minimum tuple coefficient, each ≥ row the
// maximum, equality rows split into both, and the objective taking the
// optimistic end for the sense (maximum for Maximize, minimum for
// Minimize). objW holds one objective weight per candidate tuple; nil
// means a zero objective.
func Relax(atoms []*translate.LinearAtom, objW []float64, sense lp.Sense, groups []Group) (*lp.Problem, error) {
	if err := fault.Check("bound.relax"); err != nil {
		// Every certification stage builds its relaxation here, so this
		// one site lets the chaos harness fail any bound pass; callers
		// degrade to an uncertified answer, never a failed query.
		return nil, err
	}
	p := lp.NewProblem(len(groups))
	obj := make([]float64, len(groups))
	for g, grp := range groups {
		if err := p.SetBounds(g, grp.Lo, grp.Hi); err != nil {
			return nil, err
		}
		obj[g] = groupCoef(objW, grp.Tuples, sense == lp.Maximize)
	}
	if err := p.SetObjective(obj, sense); err != nil {
		return nil, err
	}
	for _, at := range atoms {
		switch at.Op {
		case lp.LE:
			addRow(p, at.W, groups, lp.LE, at.RHS, false)
		case lp.GE:
			addRow(p, at.W, groups, lp.GE, at.RHS, true)
		case lp.EQ:
			// m ≥ 0 makes the min-coefficient sum a lower envelope of
			// the true row value and the max-coefficient sum an upper
			// envelope, so an equality is relaxed to the band between
			// them.
			addRow(p, at.W, groups, lp.LE, at.RHS, false)
			addRow(p, at.W, groups, lp.GE, at.RHS, true)
		}
	}
	return p, nil
}

// addRow appends one relaxed constraint row, reducing each group's
// tuple coefficients to their maximum (wantMax) or minimum.
func addRow(p *lp.Problem, w []float64, groups []Group, op lp.Op, rhs float64, wantMax bool) {
	coefs := make([]lp.Coef, 0, len(groups))
	for g, grp := range groups {
		c := groupCoef(w, grp.Tuples, wantMax)
		if c != 0 {
			coefs = append(coefs, lp.Coef{Var: g, Val: c})
		}
	}
	p.AddConstraint(coefs, op, rhs)
}

// groupCoef reduces a weight vector over a group's tuples to its
// maximum (wantMax) or minimum; an empty group contributes zero.
func groupCoef(w []float64, tuples []int, wantMax bool) float64 {
	if len(w) == 0 || len(tuples) == 0 {
		return 0
	}
	c := w[tuples[0]]
	for _, t := range tuples[1:] {
		v := w[t]
		if wantMax && v > c || !wantMax && v < c {
			c = v
		}
	}
	return c
}

// Solve optimizes a relaxation built by Relax and classifies the
// result. konst is the affine objective constant the relaxation's
// rows omit (the query objective is konst + Σ w·m); it is added to
// the LP optimum before padding. A canceled or iteration-limited
// solve returns an uncertified outcome — an interrupted simplex
// proves nothing.
func Solve(ctx context.Context, p *lp.Problem, konst float64) Outcome {
	var o lp.Options
	if ctx != nil {
		o.Cancel = func() bool {
			select {
			case <-ctx.Done():
				return true
			default:
				return false
			}
		}
	}
	sol := lp.Solve(p, o)
	out := Outcome{Iterations: sol.Iterations}
	switch sol.Status {
	case lp.StatusOptimal:
		out.Bound = Pad(sol.Objective+konst, p.Sense())
		out.Certified = true
	case lp.StatusInfeasible:
		out.Infeasible = true
	}
	return out
}

// Best merges per-branch outcomes of a DNF union into one. The union's
// optimum is the best branch optimum, so its dual bound is the best
// (largest for Maximize, smallest for Minimize) certified branch
// bound. The merge is certified only when every branch is accounted
// for — certified or relaxation-infeasible — and at least one is
// certified; a single interrupted branch leaves the union unproven.
// Infeasible is set only when every branch relaxation was infeasible,
// which callers must NOT surface as certified query infeasibility.
func Best(sense lp.Sense, outs []Outcome) Outcome {
	res := Outcome{Infeasible: len(outs) > 0}
	accounted, seen := true, false
	for _, o := range outs {
		res.Iterations += o.Iterations
		if o.Infeasible {
			continue
		}
		res.Infeasible = false
		if !o.Certified {
			accounted = false
			continue
		}
		if !seen || better(sense, o.Bound, res.Bound) {
			res.Bound = o.Bound
		}
		seen = true
	}
	res.Certified = accounted && seen
	return res
}

// better reports whether a beats b as a union bound for the sense: a
// maximization union is bounded by the largest branch bound, a
// minimization union by the smallest.
func better(sense lp.Sense, a, b float64) bool {
	if sense == lp.Maximize {
		return a > b
	}
	return a < b
}

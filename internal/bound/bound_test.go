package bound_test

// Bound-soundness harness. The theorem under test is weak duality at
// the linear-atom layer: for any conjunction (or DNF union) of linear
// atoms over integer multiplicities, a certified outcome's Bound must
// never be beaten by the exact integer optimum — an upper bound for a
// maximization, a lower bound for a minimization — for BOTH groupings
// the engine uses (exact singleton relaxation and coarse coefficient-
// range groups). TestBoundSoundness1000 replays ≥1000 deterministic
// generated systems spanning the lowered forms of the full atom
// grammar (SUM/COUNT/AVG/filtered atoms, MIN/MAX exclusion and
// at-least-one rows, equalities, BETWEEN band pairs, disjunctions,
// pins, objective constants) against the exact MILP and demands zero
// violations. The same systems also run through the full tightening
// pipeline (segment split + Lagrangian rounds + one-level descent)
// over the coarse groups, with a gap-quantile gate the bare coarse
// envelope does not meet — the regression tripwire for the stages.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bound"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/translate"
)

func TestPadDirection(t *testing.T) {
	if b := bound.Pad(10, lp.Maximize); b <= 10 {
		t.Fatalf("maximize pad must raise the bound, got %g", b)
	}
	if b := bound.Pad(10, lp.Minimize); b >= 10 {
		t.Fatalf("minimize pad must lower the bound, got %g", b)
	}
	if b := bound.Pad(-10, lp.Maximize); b <= -10 {
		t.Fatalf("pad must move toward +inf for maximize even below zero, got %g", b)
	}
}

func TestIntervalGap(t *testing.T) {
	if g := (bound.Interval{Found: 100, Bound: 105}).Gap(); math.Abs(g-0.05) > 1e-12 {
		t.Fatalf("gap = %g, want 0.05", g)
	}
	// Near-zero incumbents divide by 1, not by |Found|.
	if g := (bound.Interval{Found: 0, Bound: 0.5}).Gap(); math.Abs(g-0.5) > 1e-12 {
		t.Fatalf("gap = %g, want 0.5", g)
	}
	if g := (bound.Interval{Found: -100, Bound: -105}).Gap(); math.Abs(g-0.05) > 1e-12 {
		t.Fatalf("gap must be sign-agnostic, got %g", g)
	}
}

func TestCandidatesGrouping(t *testing.T) {
	gs := bound.Candidates(3, 2, map[int]bool{1: true})
	if len(gs) != 3 {
		t.Fatalf("want 3 singleton groups, got %d", len(gs))
	}
	if gs[1].Lo != 1 || gs[0].Lo != 0 {
		t.Fatalf("pin lower bounds wrong: %+v", gs)
	}
	if gs[0].Hi != 2 {
		t.Fatalf("maxMult cap wrong: %+v", gs[0])
	}
	if un := bound.Candidates(1, 0, nil); !math.IsInf(un[0].Hi, 1) {
		t.Fatalf("maxMult 0 must mean uncapped, got %g", un[0].Hi)
	}
}

// TestRelaxSingletonKnapsack pins the exact-relaxation regime on a
// hand-checked knapsack: maximize 6m0+5m1+4m2 s.t. 5m0+4m1+3m2 ≤ 10,
// 0 ≤ m ≤ 1. Density ordering fills m2 = 1, m1 = 1 and 3/5 of m0, so
// the LP optimum is 12.6; the certified bound must be 12.6 plus pad,
// and the integer optimum 11 must respect it.
func TestRelaxSingletonKnapsack(t *testing.T) {
	atoms := []*translate.LinearAtom{{W: []float64{5, 4, 3}, Op: lp.LE, RHS: 10}}
	objW := []float64{6, 5, 4}
	p, err := bound.Relax(atoms, objW, lp.Maximize, bound.Candidates(3, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	out := bound.Solve(context.Background(), p, 0)
	if !out.Certified {
		t.Fatalf("knapsack relaxation must certify: %+v", out)
	}
	lpOpt := 12.6
	if math.Abs(out.Bound-lpOpt) > 1e-6*lpOpt {
		t.Fatalf("bound = %g, want LP optimum %g (+pad)", out.Bound, lpOpt)
	}
	if out.Bound < 11 {
		t.Fatalf("bound %g beaten by integer optimum 11", out.Bound)
	}
}

// TestRelaxGroupedEnvelope checks the coefficient-range reduction: a ≤
// row must take each group's minimum weight and the maximize objective
// its maximum, making the grouped optimum an over-estimate of the
// singleton one — never an under-estimate.
func TestRelaxGroupedEnvelope(t *testing.T) {
	atoms := []*translate.LinearAtom{{W: []float64{2, 8, 3, 9}, Op: lp.LE, RHS: 12}}
	objW := []float64{1, 7, 2, 6}
	fine, err := bound.Relax(atoms, objW, lp.Maximize, bound.Candidates(4, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := bound.Relax(atoms, objW, lp.Maximize, []bound.Group{
		{Tuples: []int{0, 1}, Hi: 2},
		{Tuples: []int{2, 3}, Hi: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	fo := bound.Solve(context.Background(), fine, 0)
	co := bound.Solve(context.Background(), coarse, 0)
	if !fo.Certified || !co.Certified {
		t.Fatalf("both relaxations must certify: %+v %+v", fo, co)
	}
	if co.Bound < fo.Bound-1e-9 {
		t.Fatalf("coarse bound %g below fine bound %g: grouping must only loosen", co.Bound, fo.Bound)
	}
}

// TestSolveKonst: the affine objective constant dropped by the
// translation must come back in the certified bound.
func TestSolveKonst(t *testing.T) {
	p, err := bound.Relax(nil, []float64{1}, lp.Maximize, bound.Candidates(1, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	out := bound.Solve(context.Background(), p, 41)
	if !out.Certified || out.Bound < 42 {
		t.Fatalf("konst not added: %+v", out)
	}
}

// TestSolveCanceled: an interrupted simplex proves nothing, so a
// canceled context must never yield a certified outcome.
func TestSolveCanceled(t *testing.T) {
	atoms := []*translate.LinearAtom{{W: []float64{1, 2, 1, 3}, Op: lp.LE, RHS: 5}}
	p, err := bound.Relax(atoms, []float64{3, 5, 4, 7}, lp.Maximize, bound.Candidates(4, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if out := bound.Solve(ctx, p, 0); out.Certified {
		t.Fatalf("canceled solve certified a bound: %+v", out)
	}
}

func TestBestMerge(t *testing.T) {
	cert := func(b float64) bound.Outcome { return bound.Outcome{Bound: b, Certified: true} }
	cases := []struct {
		name string
		outs []bound.Outcome
		want bound.Outcome
	}{
		{"empty", nil, bound.Outcome{}},
		{"max-picks-largest", []bound.Outcome{cert(3), cert(7)}, bound.Outcome{Bound: 7, Certified: true}},
		{"infeasible-branch-skipped", []bound.Outcome{{Infeasible: true}, cert(4)}, bound.Outcome{Bound: 4, Certified: true}},
		{"uncertified-branch-poisons", []bound.Outcome{cert(4), {}}, bound.Outcome{Bound: 4}},
		{"all-infeasible", []bound.Outcome{{Infeasible: true}, {Infeasible: true}}, bound.Outcome{Infeasible: true}},
	}
	for _, c := range cases {
		got := bound.Best(lp.Maximize, c.outs)
		got.Iterations = 0
		if got != c.want {
			t.Errorf("%s: Best = %+v, want %+v", c.name, got, c.want)
		}
	}
	got := bound.Best(lp.Minimize, []bound.Outcome{cert(3), cert(7)})
	if got.Bound != 3 || !got.Certified {
		t.Errorf("minimize union must keep the smallest bound: %+v", got)
	}
}

// boundCase is one generated differential system: a DNF union of
// linear-atom conjunctions plus an objective, mirroring what the
// engine's lowering produces for the full PaQL atom grammar.
type boundCase struct {
	n        int
	maxMult  int
	branches [][]*translate.LinearAtom
	objW     []float64
	sense    lp.Sense
	konst    float64
	pins     map[int]bool
	kinds    map[string]bool
}

// genBoundCase draws one system. Atom shapes follow the engine's
// lowerings: COUNT rows are all-ones, AVG(a) ≤ c lowers to
// SUM(a − c) ≤ 0, MIN(a) ≥ c to an exclusion row Σ_{a_t<c} m_t ≤ 0,
// MIN(a) ≤ c to an at-least-one row Σ_{a_t≤c} m_t ≥ 1 (MAX mirrored),
// filters zero a random subset of weights.
func genBoundCase(rng *rand.Rand) boundCase {
	c := boundCase{
		n:       6 + rng.Intn(18),
		maxMult: 1 + rng.Intn(2),
		kinds:   map[string]bool{},
		pins:    map[int]bool{},
	}
	attr := make([]float64, c.n)
	for i := range attr {
		attr[i] = float64(rng.Intn(100) - 10)
	}

	atom := func() *translate.LinearAtom {
		w := make([]float64, c.n)
		ops := []lp.Op{lp.LE, lp.GE}
		switch rng.Intn(8) {
		case 0:
			c.kinds["count"] = true
			for i := range w {
				w[i] = 1
			}
			op := []lp.Op{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
			if op == lp.EQ {
				c.kinds["eq"] = true
			}
			return &translate.LinearAtom{W: w, Op: op, RHS: float64(1 + rng.Intn(5))}
		case 1:
			c.kinds["sum"] = true
			copy(w, attr)
			op := []lp.Op{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
			if op == lp.EQ {
				c.kinds["eq"] = true
			}
			return &translate.LinearAtom{W: w, Op: op, RHS: float64(rng.Intn(260) - 40)}
		case 2:
			c.kinds["sum"] = true
			c.kinds["filter"] = true
			for i := range w {
				if rng.Intn(2) == 0 {
					w[i] = attr[i]
				}
			}
			return &translate.LinearAtom{W: w, Op: ops[rng.Intn(2)], RHS: float64(rng.Intn(160) - 40)}
		case 3:
			// AVG(attr) ≤/≥ cut lowered as SUM(attr − cut) ≤/≥ 0.
			c.kinds["avg"] = true
			cut := float64(rng.Intn(80) - 10)
			for i := range w {
				w[i] = attr[i] - cut
			}
			return &translate.LinearAtom{W: w, Op: ops[rng.Intn(2)], RHS: 0}
		case 4:
			// MIN(attr) ≥ cut: tuples below the cut are excluded.
			c.kinds["min"] = true
			cut := float64(rng.Intn(70) - 15)
			for i := range w {
				if attr[i] < cut {
					w[i] = 1
				}
			}
			return &translate.LinearAtom{W: w, Op: lp.LE, RHS: 0}
		case 5:
			// MAX(attr) ≥ cut: at least one tuple at or above the cut.
			c.kinds["max"] = true
			cut := float64(rng.Intn(90) - 10)
			for i := range w {
				if attr[i] >= cut {
					w[i] = 1
				}
			}
			return &translate.LinearAtom{W: w, Op: lp.GE, RHS: 1}
		case 6:
			// MAX(attr) ≤ cut: tuples above the cut are excluded.
			c.kinds["max"] = true
			cut := float64(rng.Intn(90) - 10)
			for i := range w {
				if attr[i] > cut {
					w[i] = 1
				}
			}
			return &translate.LinearAtom{W: w, Op: lp.LE, RHS: 0}
		default:
			c.kinds["sum"] = true
			for i := range w {
				w[i] = float64(rng.Intn(60))
			}
			return &translate.LinearAtom{W: w, Op: ops[rng.Intn(2)], RHS: float64(rng.Intn(200))}
		}
	}

	base := []*translate.LinearAtom{atom()}
	if rng.Intn(2) == 0 {
		base = append(base, atom())
	}
	if rng.Intn(3) == 0 {
		// SUM(w) BETWEEN lo AND hi lowers to a GE/LE pair over one weight
		// vector — the band rows the tightening stages exist for.
		c.kinds["band"] = true
		w := make([]float64, c.n)
		for i := range w {
			w[i] = float64(rng.Intn(80))
		}
		lo := float64(rng.Intn(120))
		base = append(base,
			&translate.LinearAtom{W: w, Op: lp.GE, RHS: lo},
			&translate.LinearAtom{W: append([]float64(nil), w...), Op: lp.LE, RHS: lo + float64(30+rng.Intn(150))})
	}
	nb := 1
	if rng.Intn(3) == 0 {
		c.kinds["or"] = true
		nb = 2 + rng.Intn(2)
	}
	for b := 0; b < nb; b++ {
		br := append([]*translate.LinearAtom{}, base...)
		if nb > 1 {
			br = append(br, atom())
		}
		c.branches = append(c.branches, br)
	}

	c.objW = make([]float64, c.n)
	for i := range c.objW {
		c.objW[i] = float64(rng.Intn(100) - 20)
	}
	c.sense = lp.Maximize
	if rng.Intn(2) == 0 {
		c.sense = lp.Minimize
	}
	if rng.Intn(4) == 0 {
		c.kinds["konst"] = true
		c.konst = float64(rng.Intn(20) - 10)
	}
	if rng.Intn(6) == 0 {
		c.kinds["pin"] = true
		c.pins[rng.Intn(c.n)] = true
	}
	return c
}

// exactBranch solves one branch's integer program to proven optimality
// or infeasibility; ok is false when the node limit fired first.
func exactBranch(c boundCase, atoms []*translate.LinearAtom) (obj float64, feasible, ok bool) {
	p := lp.NewProblem(c.n)
	for j := 0; j < c.n; j++ {
		lo := 0.0
		if c.pins[j] {
			lo = 1
		}
		if err := p.SetBounds(j, lo, float64(c.maxMult)); err != nil {
			return 0, false, false
		}
	}
	if err := p.SetObjective(c.objW, c.sense); err != nil {
		return 0, false, false
	}
	for _, at := range atoms {
		coefs := make([]lp.Coef, 0, c.n)
		for j, w := range at.W {
			if w != 0 {
				coefs = append(coefs, lp.Coef{Var: j, Val: w})
			}
		}
		if _, err := p.AddConstraint(coefs, at.Op, at.RHS); err != nil {
			return 0, false, false
		}
	}
	m := milp.NewProblem(p)
	for j := 0; j < c.n; j++ {
		m.SetInteger(j)
	}
	sol := milp.Solve(m, milp.Options{MaxNodes: 100000})
	switch sol.Status {
	case milp.StatusOptimal:
		return sol.Objective + c.konst, true, true
	case milp.StatusInfeasible:
		return 0, false, true
	}
	return 0, false, false
}

// groupBound relaxes every branch under the given grouping and merges.
func groupBound(c boundCase, groups []bound.Group) (bound.Outcome, error) {
	outs := make([]bound.Outcome, 0, len(c.branches))
	for _, br := range c.branches {
		p, err := bound.Relax(br, c.objW, c.sense, groups)
		if err != nil {
			return bound.Outcome{}, err
		}
		outs = append(outs, bound.Solve(context.Background(), p, c.konst))
	}
	return bound.Best(c.sense, outs), nil
}

// pipelineBound runs the full tightening pipeline (segment split,
// Lagrangian rounds, one-level descent) per branch over the coarse
// grouping and merges — the tree-path bound the sketch engine ships
// above the raw-candidate cap.
func pipelineBound(c boundCase, coarse []bound.Group) bound.Outcome {
	tupleLo := func(t int) float64 {
		if c.pins[t] {
			return 1
		}
		return 0
	}
	tupleHi := func(t int) float64 { return float64(c.maxMult) }
	outs := make([]bound.Outcome, 0, len(c.branches))
	for _, br := range c.branches {
		split := bound.SplitGroups(coarse, c.objW, c.sense, 4*len(coarse), tupleLo, tupleHi)
		pr := bound.RunPipeline(split, bound.PipelineOptions{
			Ctx:           context.Background(),
			Atoms:         br,
			ObjW:          c.objW,
			Konst:         c.konst,
			Sense:         c.sense,
			TightenRounds: bound.DefaultTightenRounds,
			DescendBudget: c.n,
			TupleLo:       tupleLo,
			TupleHi:       tupleHi,
		})
		outs = append(outs, pr.Outcome)
	}
	return bound.Best(c.sense, outs)
}

// coarseGroups shuffles the candidates into 2-5 groups with Lo = pin
// count and Hi = member count × maxMult, mimicking tree leaves.
func coarseGroups(c boundCase, rng *rand.Rand) []bound.Group {
	perm := rng.Perm(c.n)
	k := 2 + rng.Intn(4)
	if k > c.n {
		k = c.n
	}
	groups := make([]bound.Group, k)
	for i, t := range perm {
		g := &groups[i%k]
		g.Tuples = append(g.Tuples, t)
		if c.pins[t] {
			g.Lo++
		}
	}
	for i := range groups {
		groups[i].Hi = float64(len(groups[i].Tuples) * c.maxMult)
	}
	return groups
}

// beats reports a violation: the exact optimum strictly beyond the
// certified bound (above it for Maximize, below for Minimize) past the
// relative tolerance.
func beats(sense lp.Sense, exact, b, tol float64) bool {
	if sense == lp.Maximize {
		return exact > b+tol
	}
	return exact < b-tol
}

// TestBoundSoundness1000 is the deterministic differential corpus: at
// least 1000 generated systems (a smaller slice under -short) where
// the exact MILP proves its answer, each checked against BOTH the
// singleton and the coarse grouped relaxation, with zero bound
// violations, per-atom-kind coverage, and quantile gates on how tight
// the exact relaxation runs.
func TestBoundSoundness1000(t *testing.T) {
	target := 1000
	if testing.Short() {
		target = 150
	}
	rng := rand.New(rand.NewSource(20260808))
	kinds := map[string]int{}
	ran, feasible, infeasAgree := 0, 0, 0
	var gaps, coarseGaps, pipeGaps []float64
	for attempts := 0; ran < target && attempts < 4*target; attempts++ {
		c := genBoundCase(rng)

		exactFeasible, exactObj, allProven := false, 0.0, true
		for _, br := range c.branches {
			obj, feas, ok := exactBranch(c, br)
			if !ok {
				allProven = false
				break
			}
			if feas && (!exactFeasible || beats(c.sense, obj, exactObj, 0)) {
				exactObj = obj
				exactFeasible = true
			}
		}
		if !allProven {
			continue
		}
		ran++
		for k := range c.kinds {
			kinds[k]++
		}

		fine, err := groupBound(c, bound.Candidates(c.n, c.maxMult, c.pins))
		if err != nil {
			t.Fatalf("fine relax: %v", err)
		}
		cg := coarseGroups(c, rng)
		coarse, err := groupBound(c, cg)
		if err != nil {
			t.Fatalf("coarse relax: %v", err)
		}
		pipe := pipelineBound(c, cg)

		if exactFeasible {
			feasible++
			tol := 1e-6 * (1 + math.Abs(exactObj))
			if fine.Certified && beats(c.sense, exactObj, fine.Bound, tol) {
				t.Fatalf("BOUND VIOLATION (singleton): exact %g beats certified bound %g (sense %v, case %d)",
					exactObj, fine.Bound, c.sense, ran)
			}
			if coarse.Certified && beats(c.sense, exactObj, coarse.Bound, tol) {
				t.Fatalf("BOUND VIOLATION (grouped): exact %g beats certified bound %g (sense %v, case %d)",
					exactObj, coarse.Bound, c.sense, ran)
			}
			if pipe.Certified && beats(c.sense, exactObj, pipe.Bound, tol) {
				t.Fatalf("BOUND VIOLATION (pipeline): exact %g beats certified bound %g (sense %v, case %d)",
					exactObj, pipe.Bound, c.sense, ran)
			}
			// At the linear-atom layer the relaxation's feasible set
			// contains every integral package, so a certified-infeasible
			// union with an exactly-feasible instance is a soundness bug.
			// The pipeline's stages only refine, so the same holds for it.
			if fine.Infeasible || coarse.Infeasible || pipe.Infeasible {
				t.Fatalf("relaxation claims infeasible but exact found %g (case %d)", exactObj, ran)
			}
			if fine.Certified {
				gaps = append(gaps, bound.Interval{Found: exactObj, Bound: fine.Bound}.Gap())
			}
			if coarse.Certified && pipe.Certified {
				// The pipeline starts from a refinement of the same coarse
				// grouping, so it may never come back looser.
				if beats(c.sense, pipe.Bound, coarse.Bound, tol) {
					t.Fatalf("pipeline bound %g looser than its own coarse envelope %g (sense %v, case %d)",
						pipe.Bound, coarse.Bound, c.sense, ran)
				}
				coarseGaps = append(coarseGaps, bound.Interval{Found: exactObj, Bound: coarse.Bound}.Gap())
				pipeGaps = append(pipeGaps, bound.Interval{Found: exactObj, Bound: pipe.Bound}.Gap())
			}
		} else if fine.Infeasible {
			infeasAgree++
		}
	}
	if ran < target {
		t.Fatalf("only %d of %d systems proved exactly", ran, target)
	}
	for _, k := range []string{"sum", "count", "avg", "min", "max", "filter", "eq", "or", "pin", "konst", "band"} {
		if kinds[k] == 0 {
			t.Errorf("atom kind %q never reached a proven head-to-head run", k)
		}
	}
	if feasible == 0 || len(gaps) == 0 {
		t.Fatal("no feasible certified comparisons; the harness is vacuous")
	}
	// Tightness gates on the exact (singleton) relaxation: most small
	// integer programs have modest LP gaps; a loosening regression
	// shows up as the quantiles sliding out.
	within10, within50 := 0, 0
	for _, g := range gaps {
		if g <= 0.10 {
			within10++
		}
		if g <= 0.50 {
			within50++
		}
	}
	t.Logf("ran=%d feasible=%d certified-gaps=%d within10%%=%d within50%%=%d infeas-agree=%d kinds=%v",
		ran, feasible, len(gaps), within10, within50, infeasAgree, kinds)
	if frac := float64(within10) / float64(len(gaps)); frac < 0.50 {
		t.Errorf("only %.0f%% of certified singleton bounds within a 10%% gap (want >= 50%%)", 100*frac)
	}
	if frac := float64(within50) / float64(len(gaps)); frac < 0.80 {
		t.Errorf("only %.0f%% of certified singleton bounds within a 50%% gap (want >= 80%%)", 100*frac)
	}
	// Pipeline tightness gate, calibrated so the bare coarse envelope
	// fails it: on the same coarse grouping the staged pipeline must pull
	// a clear majority of certified gaps under 25%, a quantile the
	// pre-pipeline envelopes never reached on this corpus.
	if len(pipeGaps) == 0 {
		t.Fatal("pipeline never certified a feasible head-to-head case")
	}
	cw25, pw25 := 0, 0
	for i := range pipeGaps {
		if coarseGaps[i] <= 0.25 {
			cw25++
		}
		if pipeGaps[i] <= 0.25 {
			pw25++
		}
	}
	t.Logf("coarse-vs-pipeline certified gaps: %d pairs, within25%% coarse=%d pipeline=%d",
		len(pipeGaps), cw25, pw25)
	if frac := float64(pw25) / float64(len(pipeGaps)); frac < 0.60 {
		t.Errorf("only %.0f%% of pipeline bounds within a 25%% gap (want >= 60%%): tightening stages regressed", 100*frac)
	}
}

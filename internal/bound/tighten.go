package bound

// This file is the tightening pipeline over the grouped relaxation:
// the machinery that turns the single coefficient-range envelope per
// partition leaf into a certificate tight enough to act on.
//
// Stage 1 — segmented columns (SplitGroups): each leaf group is split
// into contiguous segments of its objective-sorted tuple list, with
// per-tuple multiplicity caps summed per segment. A leaf's objective
// contribution is then bounded by a best-k prefix over its segments (a
// piecewise-linear column) instead of Hi × its single most optimistic
// coefficient, and every constraint row's coefficient range shrinks to
// the per-segment range.
//
// Stage 2 — Lagrangian tightening (part of RunPipeline): the rows the
// grouped LP leaves tight or violated — in practice the band (BETWEEN
// and =) rows whose [min,max] envelopes the relaxation exploits — are
// dualized with sign-correct multipliers. For any valid multiplier
// vector y the Lagrangian
//
//	L(y) = opt_{x ∈ X} [ (c − Σᵢ yᵢaᵢ)·x ] + Σᵢ yᵢbᵢ
//
// is a true dual bound (weak duality, with X the grouped relaxation of
// the remaining rows), because the adjusted objective c − Σ yᵢaᵢ is
// computed per tuple and only then extremized per group: the dualized
// rows can no longer be cheated by picking different tuples for the
// objective and for the row. A few subgradient rounds (one internal/lp
// solve each) search for a good y; every evaluated y yields a valid
// bound, so the best one is kept and an unconverged search loses
// nothing.
//
// Stage 3 — adaptive one-level descent (also RunPipeline): when the
// bound is still wider than the caller's target, the groups that
// contribute most looseness (large LP value × wide objective spread —
// the children of a leaf are its tuples) are re-bounded as singleton
// columns under a variable budget and the relaxation is re-solved.
// Descending a level is a pure refinement: every integral package
// feasible for the branch remains feasible for the refined relaxation,
// so the bound only tightens.
//
// All three stages only ever shrink the relaxation's feasible set
// toward the integral one (or price its rows exactly), so each stage's
// bound is individually valid and the pipeline reports the tightest.

import (
	"context"
	"math"
	"sort"

	"repro/internal/lp"
	"repro/internal/translate"
)

// Stage names for the bound pipeline, in tightening order. They double
// as the planner's bound-decision values, so EXPLAIN and Stats speak
// the same vocabulary.
const (
	// StageRawLP: exact LP relaxation over the raw candidates (singleton
	// groups); nothing to tighten, it is the tightest LP bound.
	StageRawLP = "raw-lp"
	// StageTreeLP: grouped LP over (segmented) partition-tree leaves.
	StageTreeLP = "tree-lp"
	// StageTightened: StageTreeLP plus subgradient Lagrangian rounds on
	// the binding rows.
	StageTightened = "tree-lp+tighten"
	// StageDescend: StageTightened plus a one-level descent re-solve
	// over the worst-contributing groups.
	StageDescend = "descend-1"
)

// stageRank orders the pipeline stages; unknown (or empty) caps mean
// "run everything".
func stageRank(stage string) int {
	switch stage {
	case StageRawLP:
		return 0
	case StageTreeLP:
		return 1
	case StageTightened:
		return 2
	case StageDescend:
		return 3
	}
	return 3
}

// Pipeline defaults, exported so callers and benchmarks agree on what
// "the stock pipeline" means.
const (
	// DefaultTightenRounds bounds the subgradient Lagrangian rounds (one
	// grouped LP solve each).
	DefaultTightenRounds = 4
	// maxDualRows bounds how many rows a tightening round dualizes;
	// beyond a handful the adjusted-objective scans dominate the solve.
	maxDualRows = 4
	// innerTopK is how many extreme-adjusted tuples per group become
	// singleton columns in each Lagrangian inner solve (see
	// innerSegments). The inner LP keeps almost no rows, so the extra
	// columns cost little even over thousands of groups.
	innerTopK = 4
)

// PipelineOptions configures RunPipeline.
type PipelineOptions struct {
	// Ctx cancels the LP solves cooperatively (nil = never).
	Ctx context.Context
	// Atoms are the branch's tuple-level rows (including any exclusion
	// cuts); ObjW/Konst the affine objective; Sense its direction.
	Atoms []*translate.LinearAtom
	ObjW  []float64
	Konst float64
	Sense lp.Sense
	// MaxStage caps how deep the pipeline runs (a Stage* constant;
	// empty = StageDescend, the full pipeline).
	MaxStage string
	// TightenRounds bounds the Lagrangian rounds (0 skips stage 2).
	TightenRounds int
	// DescendBudget is the extra singleton variables stage 3 may spend
	// (0 skips it).
	DescendBudget int
	// Incumbent, when HasIncumbent, is a feasible objective value: once
	// the certified gap against it reaches GapTarget, later stages are
	// skipped — the adaptive part of the pipeline.
	Incumbent    float64
	HasIncumbent bool
	// GapTarget is the relative gap at which tightening may stop early
	// (0 = keep tightening through every allowed stage).
	GapTarget float64
	// TupleLo/TupleHi bound a single tuple's multiplicity (pinned count
	// and admissible per-tuple cap); nil defaults to [0, +inf). Stage 3
	// uses them to build singleton columns.
	TupleLo func(int) float64
	TupleHi func(int) float64
}

// PipelineResult is RunPipeline's outcome: the tightest bound any stage
// proved, plus how far the pipeline went getting it.
type PipelineResult struct {
	Outcome
	// Stage is the deepest pipeline stage that ran.
	Stage string
	// Rounds counts the Lagrangian rounds executed (inner LP solves).
	Rounds int
	// Vars is the variable count of the largest relaxation solved.
	Vars int
}

func (po *PipelineOptions) tupleLo(i int) float64 {
	if po.TupleLo == nil {
		return 0
	}
	return po.TupleLo(i)
}

func (po *PipelineOptions) tupleHi(i int) float64 {
	if po.TupleHi == nil {
		return lp.Inf
	}
	return po.TupleHi(i)
}

// withinTarget reports that the bound already certifies the incumbent
// within the caller's gap target, so later stages would buy nothing.
func (po *PipelineOptions) withinTarget(b float64) bool {
	if !po.HasIncumbent || po.GapTarget <= 0 {
		return false
	}
	return Interval{Found: po.Incumbent, Bound: b}.Gap() <= po.GapTarget
}

// tighter returns the tighter of two valid dual bounds for the sense:
// the smaller upper bound for a maximization, the larger lower bound
// for a minimization.
func tighter(sense lp.Sense, a, b float64) float64 {
	if sense == lp.Maximize {
		return math.Min(a, b)
	}
	return math.Max(a, b)
}

// SplitGroups refines a grouping into objective-sorted segments: each
// group's tuples are ordered best-objective-first for the sense and cut
// into contiguous chunks, one refined Group per chunk, with Lo/Hi
// summed from the per-tuple bounds (tupleLo/tupleHi; nil = [0, +inf)).
// maxVars caps the total group count; at or below it the grouping is
// returned unchanged.
//
// The refinement is sound on both sides. Splitting: any feasible
// integral package's per-tuple multiplicities sum within each chunk's
// [ΣtupleLo, ΣtupleHi], so the package maps to a feasible point of the
// refined relaxation, and each chunk's min/max coefficient range is a
// subset of its parent group's. Dropping a tuple with tupleHi ≤ 0 is
// exact, not a relaxation: such a tuple (eliminated by the branch's
// MIN/MAX rows) has multiplicity 0 in every feasible package of the
// branch, so no feasible point is lost.
func SplitGroups(groups []Group, objW []float64, sense lp.Sense, maxVars int, tupleLo, tupleHi func(int) float64) []Group {
	if len(groups) == 0 || maxVars <= len(groups) {
		return groups
	}
	segs := maxVars / len(groups)
	if segs > 32 {
		segs = 32
	}
	if segs < 2 {
		return groups
	}
	if tupleLo == nil {
		tupleLo = func(int) float64 { return 0 }
	}
	if tupleHi == nil {
		tupleHi = func(int) float64 { return lp.Inf }
	}
	out := make([]Group, 0, len(groups)*segs)
	for _, g := range groups {
		kept := make([]int, 0, len(g.Tuples))
		for _, t := range g.Tuples {
			if tupleHi(t) > 0 || tupleLo(t) > 0 {
				kept = append(kept, t)
			}
		}
		if len(kept) == 0 {
			if g.Lo > 0 {
				// A pinned tuple inside a fully-eliminated group: keep the
				// contradiction visible so the caller reports infeasibility.
				out = append(out, Group{Tuples: g.Tuples, Lo: g.Lo, Hi: 0})
			}
			continue
		}
		if len(objW) > 0 {
			sort.SliceStable(kept, func(a, b int) bool {
				if sense == lp.Maximize {
					return objW[kept[a]] > objW[kept[b]]
				}
				return objW[kept[a]] < objW[kept[b]]
			})
		}
		parts := segs
		if parts > len(kept) {
			parts = len(kept)
		}
		for s := 0; s < parts; s++ {
			a, b := s*len(kept)/parts, (s+1)*len(kept)/parts
			seg := Group{Tuples: append([]int(nil), kept[a:b]...)}
			for _, t := range seg.Tuples {
				seg.Lo += tupleLo(t)
				seg.Hi += tupleHi(t)
			}
			out = append(out, seg)
		}
	}
	return out
}

// RunPipeline runs the staged tightening pipeline over a grouped
// relaxation (typically SplitGroups output) and returns the tightest
// certified bound any stage proved. Stages only run while the result is
// not yet within GapTarget of the incumbent and MaxStage allows them;
// an uncertified or infeasible base solve short-circuits.
func RunPipeline(groups []Group, po PipelineOptions) PipelineResult {
	pr := PipelineResult{Stage: StageTreeLP, Vars: len(groups)}
	for _, g := range groups {
		if g.Lo > g.Hi {
			pr.Infeasible = true
			return pr
		}
	}
	out := solveGrouped(po, groups)
	pr.Outcome = out
	if !out.Certified {
		return pr
	}
	maxRank := stageRank(po.MaxStage)
	if maxRank >= stageRank(StageTightened) && po.TightenRounds > 0 && !po.withinTarget(pr.Bound) {
		b, rounds, iters, infeasible := tighten(po, groups)
		pr.Rounds += rounds
		pr.Iterations += iters
		if infeasible {
			pr.Outcome = Outcome{Infeasible: true, Iterations: pr.Iterations}
			pr.Stage = StageTightened
			return pr
		}
		if rounds > 0 {
			pr.Stage = StageTightened
			pr.Bound = tighter(po.Sense, pr.Bound, b)
		}
	}
	if maxRank >= stageRank(StageDescend) && po.DescendBudget > 0 && !po.withinTarget(pr.Bound) {
		x := solveGroupedX(po, groups)
		if x != nil {
			refined := descendWorst(groups, x, po)
			if len(refined) > len(groups) {
				out2 := solveGrouped(po, refined)
				pr.Iterations += out2.Iterations
				if out2.Infeasible {
					// A refined relaxation still contains every feasible
					// integral package, so its infeasibility is the branch's.
					pr.Outcome = Outcome{Infeasible: true, Iterations: pr.Iterations}
					pr.Stage = StageDescend
					pr.Vars = len(refined)
					return pr
				}
				if out2.Certified {
					pr.Stage = StageDescend
					pr.Vars = len(refined)
					pr.Bound = tighter(po.Sense, pr.Bound, out2.Bound)
					if po.TightenRounds > 0 && !po.withinTarget(pr.Bound) {
						b, rounds, iters, infeasible := tighten(po, refined)
						pr.Rounds += rounds
						pr.Iterations += iters
						if infeasible {
							pr.Outcome = Outcome{Infeasible: true, Iterations: pr.Iterations}
							return pr
						}
						if rounds > 0 {
							pr.Bound = tighter(po.Sense, pr.Bound, b)
						}
					}
				}
			}
		}
	}
	return pr
}

// solveGrouped builds and solves the grouped relaxation for the
// pipeline's atoms over the given groups.
func solveGrouped(po PipelineOptions, groups []Group) Outcome {
	p, err := Relax(po.Atoms, po.ObjW, po.Sense, groups)
	if err != nil {
		return Outcome{}
	}
	return Solve(po.Ctx, p, po.Konst)
}

// solveGroupedX re-solves the grouped relaxation and returns its primal
// solution (nil when not optimal) — the group activities stage
// selection scores against.
func solveGroupedX(po PipelineOptions, groups []Group) []float64 {
	p, err := Relax(po.Atoms, po.ObjW, po.Sense, groups)
	if err != nil {
		return nil
	}
	sol := lp.Solve(p, lpOptions(po))
	if sol.Status != lp.StatusOptimal {
		return nil
	}
	return sol.X
}

// descendWorst refines the groups contributing most looseness into
// singleton columns: score = LP activity × objective-coefficient spread
// (a group at zero or with uniform coefficients cannot be cheated), and
// the worst groups are split one level down — for a leaf group, its
// children are its tuples — until the extra-variable budget runs out.
func descendWorst(groups []Group, x []float64, po PipelineOptions) []Group {
	if len(po.ObjW) == 0 {
		return groups
	}
	type scored struct {
		g     int
		score float64
	}
	var cand []scored
	for g, grp := range groups {
		if len(grp.Tuples) < 2 || g >= len(x) || x[g] <= 0 {
			continue
		}
		lo := groupCoef(po.ObjW, grp.Tuples, false)
		hi := groupCoef(po.ObjW, grp.Tuples, true)
		if spread := (hi - lo) * x[g]; spread > 0 {
			cand = append(cand, scored{g, spread})
		}
	}
	if len(cand) == 0 {
		return groups
	}
	sort.SliceStable(cand, func(i, j int) bool { return cand[i].score > cand[j].score })
	split := make(map[int]bool)
	budget := po.DescendBudget
	for _, c := range cand {
		extra := len(groups[c.g].Tuples) - 1
		if extra > budget {
			continue
		}
		split[c.g] = true
		budget -= extra
		if budget <= 0 {
			break
		}
	}
	if len(split) == 0 {
		return groups
	}
	out := make([]Group, 0, len(groups)+po.DescendBudget)
	for g, grp := range groups {
		if !split[g] {
			out = append(out, grp)
			continue
		}
		for _, t := range grp.Tuples {
			out = append(out, Group{Tuples: []int{t}, Lo: po.tupleLo(t), Hi: po.tupleHi(t)})
		}
	}
	return out
}

// dualRow is one dualized constraint row of the Lagrangian: the atom,
// the multiplier's valid sign for the sense (+1: y ≥ 0, −1: y ≤ 0, 0:
// free, for equality rows), and the current multiplier.
type dualRow struct {
	atom *translate.LinearAtom
	sign int
	y    float64
}

// tighten runs the subgradient Lagrangian rounds: pick the rows whose
// envelope spread lets the grouped LP cheat, dualize them with
// sign-correct multipliers, and take a few subgradient steps, keeping
// the best (tightest) of the valid bounds every evaluated multiplier
// yields. Returns the best bound, the rounds executed, the simplex
// iterations spent, and whether an inner relaxation proved the branch
// infeasible.
func tighten(po PipelineOptions, groups []Group) (best float64, rounds, iters int, infeasible bool) {
	if len(po.ObjW) == 0 {
		return 0, 0, 0, false
	}
	duals, inner := pickDualRows(po, groups)
	if len(duals) == 0 {
		return 0, 0, 0, false
	}
	iters += warmStartDuals(po, groups, duals)
	// dir: subgradient direction that improves the bound — minimize L(y)
	// for a maximization (upper bound shrinks), maximize it for a
	// minimization.
	dir := 1.0
	if po.Sense == lp.Minimize {
		dir = -1.0
	}
	haveBest := false
	step := 1.0
	for t := 0; t < po.TightenRounds; t++ {
		L, act, its, status := lagrangianEval(po, groups, inner, duals)
		iters += its
		if status == lp.StatusInfeasible {
			return 0, rounds, iters, true
		}
		if status != lp.StatusOptimal {
			// An unbounded or interrupted inner solve proves nothing for
			// this multiplier; shrink toward zero and retry.
			for i := range duals {
				duals[i].y *= 0.25
			}
			step /= 2
			continue
		}
		rounds++
		b := Pad(L+po.Konst, po.Sense)
		if !haveBest || tighter(po.Sense, best, b) == b {
			best, haveBest = b, true
		}
		if po.withinTarget(best) {
			break
		}
		// Subgradient of L at y is (b − a·x̂) per dual row; step toward
		// the incumbent when known, by a relative fraction otherwise.
		norm := 0.0
		for i := range duals {
			g := duals[i].atom.RHS - act[i]
			norm += g * g
		}
		if norm < 1e-12 {
			break
		}
		target := L * 0.95
		if po.HasIncumbent {
			target = po.Incumbent - po.Konst
		}
		s := step * math.Abs(L-target) / norm
		if s <= 0 {
			break
		}
		for i := range duals {
			g := duals[i].atom.RHS - act[i]
			duals[i].y -= dir * s * g
			switch duals[i].sign {
			case 1:
				duals[i].y = math.Max(0, duals[i].y)
			case -1:
				duals[i].y = math.Min(0, duals[i].y)
			}
		}
		step *= 0.7
	}
	if !haveBest {
		return 0, rounds, iters, false
	}
	return best, rounds, iters, false
}

// warmStartDuals initializes the multipliers at the grouped LP's dual
// prices, estimated by finite difference: re-solve the full relaxation
// with each dualized row's RHS nudged in its relaxing direction and
// read the price off the objective change. Subgradient descent from a
// cold y = 0 needs many rounds to find the right scale (the price of a
// calorie in units of objective, say); starting at the LP's own prices
// it converges in the few rounds the pipeline budgets. Costs one small
// LP solve per dualized row. Any estimate is safe — every multiplier
// with valid signs yields a true bound — so a failed solve just leaves
// that multiplier at zero. Returns the simplex iterations spent.
func warmStartDuals(po PipelineOptions, groups []Group, duals []dualRow) (iters int) {
	base := solveGrouped(po, groups)
	iters += base.Iterations
	if !base.Certified {
		return iters
	}
	for i := range duals {
		at := duals[i].atom
		delta := 1e-3 * (1 + math.Abs(at.RHS))
		// Perturb toward feasibility-relaxing so the perturbed LP stays
		// feasible: ≤ rows up, ≥ rows down, equality bands up.
		if at.Op == lp.GE {
			delta = -delta
		}
		clone := *at
		clone.RHS += delta
		pert := make([]*translate.LinearAtom, len(po.Atoms))
		for j, a := range po.Atoms {
			if a == at {
				pert[j] = &clone
			} else {
				pert[j] = a
			}
		}
		ppo := po
		ppo.Atoms = pert
		out := solveGrouped(ppo, groups)
		iters += out.Iterations
		if !out.Certified {
			continue
		}
		y := (out.Bound - base.Bound) / delta
		switch duals[i].sign {
		case 1:
			y = math.Max(0, y)
		case -1:
			y = math.Min(0, y)
		}
		duals[i].y = y
	}
	return iters
}

// pickDualRows selects up to maxDualRows atoms worth dualizing — the
// ones whose per-group coefficient spread gives the grouped relaxation
// room to cheat, band (equality) rows first — and returns them with
// their valid multiplier signs plus the remaining (inner) atoms.
func pickDualRows(po PipelineOptions, groups []Group) ([]dualRow, []*translate.LinearAtom) {
	type scored struct {
		idx    int
		spread float64
	}
	var cand []scored
	for i, at := range po.Atoms {
		spread := 0.0
		for _, g := range groups {
			lo := groupCoef(at.W, g.Tuples, false)
			hi := groupCoef(at.W, g.Tuples, true)
			d := hi - lo
			if d > spread {
				spread = d
			}
		}
		if spread <= 0 {
			continue
		}
		if at.Op == lp.EQ {
			spread *= 4 // band rows are where the envelope bound leaks most
		}
		cand = append(cand, scored{i, spread})
	}
	if len(cand) == 0 {
		return nil, nil
	}
	sort.SliceStable(cand, func(a, b int) bool { return cand[a].spread > cand[b].spread })
	if len(cand) > maxDualRows {
		cand = cand[:maxDualRows]
	}
	take := make(map[int]bool, len(cand))
	var duals []dualRow
	for _, c := range cand {
		at := po.Atoms[c.idx]
		sign := 0
		switch at.Op {
		case lp.LE:
			sign = 1
		case lp.GE:
			sign = -1
		}
		if po.Sense == lp.Minimize {
			sign = -sign
		}
		duals = append(duals, dualRow{atom: at, sign: sign})
		take[c.idx] = true
	}
	inner := make([]*translate.LinearAtom, 0, len(po.Atoms)-len(duals))
	for i, at := range po.Atoms {
		if !take[i] {
			inner = append(inner, at)
		}
	}
	return duals, inner
}

// innerSegments refines the grouping for one Lagrangian inner solve
// around the round's adjusted objective: each group's innerTopK most
// extreme-adjusted tuples become singleton columns (so their per-tuple
// multiplicity caps bind), the rest stay one residual column. With the
// dualized rows priced into the objective, the inner problem is mostly
// cardinality-driven, and its optimum wants exactly those extreme
// tuples — left inside a wide group, the relaxation could take the
// whole group's capacity at the single best tuple's adjusted value.
// The refinement is a pure sound split (same argument as SplitGroups):
// every feasible package maps onto the refined columns within their
// [Σ tupleLo, Σ tupleHi] bounds.
func innerSegments(po PipelineOptions, groups []Group, adj []float64, wantMax bool) []Group {
	out := make([]Group, 0, len(groups)*(innerTopK+1))
	for _, g := range groups {
		if len(g.Tuples) <= innerTopK+1 {
			for _, t := range g.Tuples {
				out = append(out, Group{Tuples: []int{t}, Lo: po.tupleLo(t), Hi: po.tupleHi(t)})
			}
			continue
		}
		// Partial selection: innerTopK passes, each pulling the next
		// extreme tuple to the front.
		ts := append([]int(nil), g.Tuples...)
		for k := 0; k < innerTopK; k++ {
			best := k
			for j := k + 1; j < len(ts); j++ {
				if wantMax && adj[ts[j]] > adj[ts[best]] || !wantMax && adj[ts[j]] < adj[ts[best]] {
					best = j
				}
			}
			ts[k], ts[best] = ts[best], ts[k]
			out = append(out, Group{Tuples: []int{ts[k]}, Lo: po.tupleLo(ts[k]), Hi: po.tupleHi(ts[k])})
		}
		rest := Group{Tuples: ts[innerTopK:]}
		for _, t := range rest.Tuples {
			rest.Lo += po.tupleLo(t)
			rest.Hi += po.tupleHi(t)
		}
		out = append(out, rest)
	}
	return out
}

// lagrangianEval solves one inner relaxation: the grouped LP over the
// non-dualized rows with the per-tuple adjusted objective c − Σ yᵢaᵢ
// extremized per group (the groups first refined by innerSegments so
// the extreme tuples' own caps bind). Returns the Lagrangian value
// L(y) (a valid dual bound before the affine constant), the dualized
// rows' activities at the inner optimum's implicit tuple choice (the
// subgradient input), the simplex iterations, and the solve status.
func lagrangianEval(po PipelineOptions, groups []Group, inner []*translate.LinearAtom, duals []dualRow) (L float64, act []float64, iters int, status lp.Status) {
	n := len(po.ObjW)
	adj := make([]float64, n)
	copy(adj, po.ObjW)
	konst := 0.0
	for _, d := range duals {
		if d.y == 0 {
			continue
		}
		for t := 0; t < n && t < len(d.atom.W); t++ {
			adj[t] -= d.y * d.atom.W[t]
		}
		konst += d.y * d.atom.RHS
	}
	groups = innerSegments(po, groups, adj, po.Sense == lp.Maximize)
	p := lp.NewProblem(len(groups))
	obj := make([]float64, len(groups))
	arg := make([]int, len(groups))
	wantMax := po.Sense == lp.Maximize
	for g, grp := range groups {
		if err := p.SetBounds(g, grp.Lo, grp.Hi); err != nil {
			return 0, nil, 0, lp.StatusIterLimit
		}
		obj[g], arg[g] = extTuple(adj, grp.Tuples, wantMax)
	}
	if err := p.SetObjective(obj, po.Sense); err != nil {
		return 0, nil, 0, lp.StatusIterLimit
	}
	for _, at := range inner {
		switch at.Op {
		case lp.LE:
			addRow(p, at.W, groups, lp.LE, at.RHS, false)
		case lp.GE:
			addRow(p, at.W, groups, lp.GE, at.RHS, true)
		case lp.EQ:
			addRow(p, at.W, groups, lp.LE, at.RHS, false)
			addRow(p, at.W, groups, lp.GE, at.RHS, true)
		}
	}
	sol := lp.Solve(p, lpOptions(po))
	if sol.Status != lp.StatusOptimal {
		return 0, nil, sol.Iterations, sol.Status
	}
	act = make([]float64, len(duals))
	for i, d := range duals {
		a := 0.0
		for g := range groups {
			if sol.X[g] == 0 || arg[g] < 0 {
				continue
			}
			a += d.atom.W[arg[g]] * sol.X[g]
		}
		act[i] = a
	}
	return sol.Objective + konst, act, sol.Iterations, sol.Status
}

// extTuple returns the extreme value of a dense weight vector over a
// group's tuples together with the tuple attaining it (-1 for an empty
// group).
func extTuple(w []float64, tuples []int, wantMax bool) (float64, int) {
	if len(tuples) == 0 {
		return 0, -1
	}
	best, arg := w[tuples[0]], tuples[0]
	for _, t := range tuples[1:] {
		v := w[t]
		if wantMax && v > best || !wantMax && v < best {
			best, arg = v, t
		}
	}
	return best, arg
}

// lpOptions builds the LP solver options for a pipeline solve.
func lpOptions(po PipelineOptions) lp.Options {
	var o lp.Options
	if po.Ctx != nil {
		ctx := po.Ctx
		o.Cancel = func() bool {
			select {
			case <-ctx.Done():
				return true
			default:
				return false
			}
		}
	}
	return o
}

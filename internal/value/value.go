// Package value implements the typed datums that flow through the
// PackageBuilder engine: SQL values inside the minidb substrate, PaQL
// constants, aggregate results, and index keys. A datum is a small
// immutable value with SQL-style NULL semantics: comparisons and
// arithmetic involving NULL produce NULL, and predicates treat NULL as
// "unknown" (which filters discard).
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a V can hold.
type Kind uint8

const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// V is a single typed datum. The zero value is NULL.
type V struct {
	k Kind
	b bool
	i int64
	f float64
	s string
}

// Null returns the NULL datum.
func Null() V { return V{} }

// Bool returns a boolean datum.
func Bool(b bool) V { return V{k: KindBool, b: b} }

// Int returns an integer datum.
func Int(i int64) V { return V{k: KindInt, i: i} }

// Float returns a float datum.
func Float(f float64) V { return V{k: KindFloat, f: f} }

// Str returns a string datum.
func Str(s string) V { return V{k: KindString, s: s} }

// Kind reports the datum's runtime type.
func (v V) Kind() Kind { return v.k }

// IsNull reports whether the datum is NULL.
func (v V) IsNull() bool { return v.k == KindNull }

// IsNumeric reports whether the datum is an integer or a float.
func (v V) IsNumeric() bool { return v.k == KindInt || v.k == KindFloat }

// BoolVal returns the boolean payload. It is only meaningful when
// Kind() == KindBool.
func (v V) BoolVal() bool { return v.b }

// IntVal returns the integer payload. It is only meaningful when
// Kind() == KindInt.
func (v V) IntVal() int64 { return v.i }

// FloatVal returns the float payload. It is only meaningful when
// Kind() == KindFloat.
func (v V) FloatVal() float64 { return v.f }

// StrVal returns the string payload. It is only meaningful when
// Kind() == KindString.
func (v V) StrVal() string { return v.s }

// AsFloat coerces a numeric datum to float64. ok is false for
// non-numeric datums (including NULL).
func (v V) AsFloat() (f float64, ok bool) {
	switch v.k {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	}
	return 0, false
}

// AsInt coerces a numeric datum to int64 (floats truncate toward zero).
// ok is false for non-numeric datums.
func (v V) AsInt() (i int64, ok bool) {
	switch v.k {
	case KindInt:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	}
	return 0, false
}

// Truthy interprets the datum as a three-valued SQL boolean:
// (true, false) for TRUE, (false, false) for FALSE, (_, true) for
// NULL/unknown. Non-boolean, non-null datums are never truthy.
func (v V) Truthy() (val bool, null bool) {
	switch v.k {
	case KindNull:
		return false, true
	case KindBool:
		return v.b, false
	}
	return false, false
}

// Compare orders two datums. It returns cmp < 0, == 0, > 0 when v is
// respectively less than, equal to, or greater than o. null is true when
// either operand is NULL (SQL unknown); cmp is then meaningless.
// Cross-type numeric comparison (int vs float) is supported; any other
// cross-type comparison orders by kind so sorting stays total.
func (v V) Compare(o V) (cmp int, null bool) {
	if v.k == KindNull || o.k == KindNull {
		return 0, true
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.k == KindInt && o.k == KindInt {
			return cmpOrdered(v.i, o.i), false
		}
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return cmpOrdered(a, b), false
	}
	if v.k != o.k {
		return cmpOrdered(v.k, o.k), false
	}
	switch v.k {
	case KindBool:
		switch {
		case v.b == o.b:
			return 0, false
		case !v.b:
			return -1, false
		default:
			return 1, false
		}
	case KindString:
		return strings.Compare(v.s, o.s), false
	}
	return 0, false
}

func cmpOrdered[T int64 | float64 | Kind](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// SortLess is a total order for sorting: NULLs first, then by Compare.
func (v V) SortLess(o V) bool {
	if v.k == KindNull {
		return o.k != KindNull
	}
	if o.k == KindNull {
		return false
	}
	c, _ := v.Compare(o)
	return c < 0
}

// Equal reports strict equality under Compare (NULL is never equal to
// anything, including NULL).
func (v V) Equal(o V) bool {
	c, null := v.Compare(o)
	return !null && c == 0
}

// arithmetic ------------------------------------------------------------

// Add returns v + o with numeric promotion; NULL propagates.
func (v V) Add(o V) (V, error) { return numericOp(v, o, "+") }

// Sub returns v - o with numeric promotion; NULL propagates.
func (v V) Sub(o V) (V, error) { return numericOp(v, o, "-") }

// Mul returns v * o with numeric promotion; NULL propagates.
func (v V) Mul(o V) (V, error) { return numericOp(v, o, "*") }

// Div returns v / o. Division always produces a float so that PaQL
// constraint arithmetic (e.g. SUM(a)/COUNT(*)) behaves as users expect.
// Division by zero yields NULL, matching SQL engines that return NULL
// rather than erroring at runtime.
func (v V) Div(o V) (V, error) { return numericOp(v, o, "/") }

// Mod returns v % o over integers; NULL propagates; x % 0 is NULL.
func (v V) Mod(o V) (V, error) {
	if v.IsNull() || o.IsNull() {
		return Null(), nil
	}
	if v.k != KindInt || o.k != KindInt {
		return Null(), fmt.Errorf("value: %% requires integer operands, got %s %% %s", v.k, o.k)
	}
	a, b := v.i, o.i
	if b == 0 {
		return Null(), nil
	}
	return Int(a % b), nil
}

// Neg returns -v; NULL propagates.
func (v V) Neg() (V, error) {
	switch v.k {
	case KindNull:
		return Null(), nil
	case KindInt:
		return Int(-v.i), nil
	case KindFloat:
		return Float(-v.f), nil
	}
	return Null(), fmt.Errorf("value: cannot negate %s", v.k)
}

func numericOp(a, b V, op string) (V, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if op == "+" && a.k == KindString && b.k == KindString {
		return Str(a.s + b.s), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null(), fmt.Errorf("value: %s requires numeric operands, got %s %s %s", op, a.k, op, b.k)
	}
	if a.k == KindInt && b.k == KindInt && op != "/" {
		switch op {
		case "+":
			return Int(a.i + b.i), nil
		case "-":
			return Int(a.i - b.i), nil
		case "*":
			return Int(a.i * b.i), nil
		}
	}
	x, _ := a.AsFloat()
	y, _ := b.AsFloat()
	switch op {
	case "+":
		return Float(x + y), nil
	case "-":
		return Float(x - y), nil
	case "*":
		return Float(x * y), nil
	case "/":
		if y == 0 {
			return Null(), nil
		}
		return Float(x / y), nil
	}
	return Null(), fmt.Errorf("value: unknown operator %q", op)
}

// rendering & parsing ----------------------------------------------------

// String renders the datum the way the CLI and tests display it.
func (v V) String() string {
	switch v.k {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	}
	return "?"
}

// SQLString renders the datum as a SQL literal (strings quoted).
func (v V) SQLString() string {
	if v.k == KindString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// Parse infers a datum from text: integer, then float, then boolean
// literals true/false, then the empty string as NULL, otherwise a string.
// It is used by the CSV loader when no explicit column type is declared.
func Parse(s string) V {
	if s == "" {
		return Null()
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && !math.IsInf(f, 0) {
		return Float(f)
	}
	switch strings.ToLower(s) {
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	case "null":
		return Null()
	}
	return Str(s)
}

// ParseAs parses text as a specific kind, returning an error when the
// text does not conform. Empty text is NULL for every kind.
func ParseAs(s string, k Kind) (V, error) {
	if s == "" {
		return Null(), nil
	}
	switch k {
	case KindNull:
		return Null(), nil
	case KindBool:
		switch strings.ToLower(s) {
		case "true", "t", "1":
			return Bool(true), nil
		case "false", "f", "0":
			return Bool(false), nil
		}
		return Null(), fmt.Errorf("value: %q is not a boolean", s)
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("value: %q is not an integer", s)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("value: %q is not a float", s)
		}
		return Float(f), nil
	case KindString:
		return Str(s), nil
	}
	return Null(), fmt.Errorf("value: unknown kind %d", k)
}

// keys & hashing ----------------------------------------------------------

// EncodeKey appends a self-delimiting byte encoding of the datum to dst.
// Encodings of distinct datums are distinct, which makes them usable as
// grouping and index keys. The encoding does not preserve order.
func (v V) EncodeKey(dst []byte) []byte {
	dst = append(dst, byte(v.k))
	switch v.k {
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindInt:
		dst = appendUint64(dst, uint64(v.i))
	case KindFloat:
		dst = appendUint64(dst, math.Float64bits(v.f))
	case KindString:
		dst = appendUint64(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	}
	return dst
}

// DecodeKey decodes one datum from the front of src (the inverse of
// EncodeKey) and returns it together with the remaining bytes. It
// validates as it reads, so truncated or corrupted input yields an
// error rather than a junk datum — the partition-tree persistence layer
// relies on this when reading untrusted files.
func DecodeKey(src []byte) (V, []byte, error) {
	if len(src) == 0 {
		return Null(), nil, fmt.Errorf("value: empty key encoding")
	}
	k, rest := Kind(src[0]), src[1:]
	switch k {
	case KindNull:
		return Null(), rest, nil
	case KindBool:
		if len(rest) < 1 {
			return Null(), nil, fmt.Errorf("value: truncated boolean key")
		}
		return Bool(rest[0] != 0), rest[1:], nil
	case KindInt:
		u, rest, err := takeUint64(rest, "integer")
		if err != nil {
			return Null(), nil, err
		}
		return Int(int64(u)), rest, nil
	case KindFloat:
		u, rest, err := takeUint64(rest, "float")
		if err != nil {
			return Null(), nil, err
		}
		return Float(math.Float64frombits(u)), rest, nil
	case KindString:
		n, rest, err := takeUint64(rest, "string length")
		if err != nil {
			return Null(), nil, err
		}
		if n > uint64(len(rest)) {
			return Null(), nil, fmt.Errorf("value: truncated string key (%d bytes declared, %d left)", n, len(rest))
		}
		return Str(string(rest[:n])), rest[n:], nil
	}
	return Null(), nil, fmt.Errorf("value: unknown key kind %d", uint8(k))
}

func takeUint64(src []byte, what string) (uint64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, fmt.Errorf("value: truncated %s key", what)
	}
	u := uint64(src[0])<<56 | uint64(src[1])<<48 | uint64(src[2])<<40 | uint64(src[3])<<32 |
		uint64(src[4])<<24 | uint64(src[5])<<16 | uint64(src[6])<<8 | uint64(src[7])
	return u, src[8:], nil
}

func appendUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// Hash returns a 64-bit FNV hash of the datum's key encoding. Numeric
// datums that compare equal across kinds (Int(2) vs Float(2)) hash
// equal, so hash joins and group-by can mix them safely.
func (v V) Hash() uint64 {
	h := fnv.New64a()
	u := v
	if v.k == KindInt {
		// Canonicalize exact integers to the float encoding so that
		// Int(2) and Float(2.0) land in the same hash bucket.
		u = Float(float64(v.i))
	}
	var buf [32]byte
	_, _ = h.Write(u.EncodeKey(buf[:0]))
	return h.Sum64()
}

package value

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindBool:   "BOOLEAN",
		KindInt:    "INTEGER",
		KindFloat:  "FLOAT",
		KindString: "TEXT",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v V
	if !v.IsNull() {
		t.Fatal("zero V should be NULL")
	}
	if v.Kind() != KindNull {
		t.Fatalf("zero V kind = %v", v.Kind())
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if got := Bool(true); !got.BoolVal() || got.Kind() != KindBool {
		t.Errorf("Bool(true) = %v", got)
	}
	if got := Int(-7); got.IntVal() != -7 || got.Kind() != KindInt {
		t.Errorf("Int(-7) = %v", got)
	}
	if got := Float(2.5); got.FloatVal() != 2.5 || got.Kind() != KindFloat {
		t.Errorf("Float(2.5) = %v", got)
	}
	if got := Str("abc"); got.StrVal() != "abc" || got.Kind() != KindString {
		t.Errorf("Str(abc) = %v", got)
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Errorf("Int(3).AsFloat() = %v, %v", f, ok)
	}
	if f, ok := Float(3.5).AsFloat(); !ok || f != 3.5 {
		t.Errorf("Float(3.5).AsFloat() = %v, %v", f, ok)
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Error("Str.AsFloat should fail")
	}
	if _, ok := Null().AsFloat(); ok {
		t.Error("Null.AsFloat should fail")
	}
	if i, ok := Float(3.9).AsInt(); !ok || i != 3 {
		t.Errorf("Float(3.9).AsInt() = %v, %v (want truncation)", i, ok)
	}
	if _, ok := Bool(true).AsInt(); ok {
		t.Error("Bool.AsInt should fail")
	}
}

func TestTruthy(t *testing.T) {
	if v, null := Bool(true).Truthy(); !v || null {
		t.Error("Bool(true) should be truthy")
	}
	if v, null := Bool(false).Truthy(); v || null {
		t.Error("Bool(false) should be falsy, known")
	}
	if _, null := Null().Truthy(); !null {
		t.Error("Null should be unknown")
	}
	if v, null := Int(1).Truthy(); v || null {
		t.Error("Int is not truthy (strict boolean semantics)")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b V
		cmp  int
		null bool
	}{
		{Int(1), Int(2), -1, false},
		{Int(2), Int(2), 0, false},
		{Int(3), Int(2), 1, false},
		{Int(2), Float(2.0), 0, false},
		{Float(1.5), Int(2), -1, false},
		{Str("a"), Str("b"), -1, false},
		{Str("b"), Str("b"), 0, false},
		{Bool(false), Bool(true), -1, false},
		{Bool(true), Bool(true), 0, false},
		{Null(), Int(1), 0, true},
		{Int(1), Null(), 0, true},
		{Null(), Null(), 0, true},
	}
	for _, tc := range tests {
		cmp, null := tc.a.Compare(tc.b)
		if null != tc.null || (!null && sign(cmp) != tc.cmp) {
			t.Errorf("Compare(%v,%v) = %d,%v want %d,%v", tc.a, tc.b, cmp, null, tc.cmp, tc.null)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestCrossTypeCompareIsTotal(t *testing.T) {
	// Strings vs numbers order by kind, so sorting mixed columns is stable.
	c, null := Int(5).Compare(Str("abc"))
	if null {
		t.Fatal("cross-type compare should not be null")
	}
	c2, _ := Str("abc").Compare(Int(5))
	if sign(c) == sign(c2) {
		t.Error("cross-type compare should be antisymmetric")
	}
}

func TestSortLess(t *testing.T) {
	if !Null().SortLess(Int(0)) {
		t.Error("NULL sorts first")
	}
	if Int(0).SortLess(Null()) {
		t.Error("non-null never sorts before NULL")
	}
	if Null().SortLess(Null()) {
		t.Error("NULL !< NULL")
	}
	if !Int(1).SortLess(Int(2)) || Int(2).SortLess(Int(1)) {
		t.Error("int ordering broken")
	}
}

func TestEqual(t *testing.T) {
	if !Int(2).Equal(Float(2)) {
		t.Error("Int(2) should equal Float(2)")
	}
	if Null().Equal(Null()) {
		t.Error("NULL never equals NULL")
	}
	if Str("a").Equal(Str("b")) {
		t.Error("a != b")
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v V, err error) V {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := mustV(Int(2).Add(Int(3))); !got.Equal(Int(5)) || got.Kind() != KindInt {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(Int(2).Add(Float(0.5))); !got.Equal(Float(2.5)) {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := mustV(Int(7).Sub(Int(2))); !got.Equal(Int(5)) {
		t.Errorf("7-2 = %v", got)
	}
	if got := mustV(Int(4).Mul(Int(3))); !got.Equal(Int(12)) {
		t.Errorf("4*3 = %v", got)
	}
	if got := mustV(Int(7).Div(Int(2))); !got.Equal(Float(3.5)) {
		t.Errorf("7/2 = %v (division is always float)", got)
	}
	if got := mustV(Int(7).Div(Int(0))); !got.IsNull() {
		t.Errorf("7/0 = %v, want NULL", got)
	}
	if got := mustV(Int(7).Mod(Int(4))); !got.Equal(Int(3)) {
		t.Errorf("7%%4 = %v", got)
	}
	if got := mustV(Int(7).Mod(Int(0))); !got.IsNull() {
		t.Errorf("7%%0 = %v, want NULL", got)
	}
	if got := mustV(Int(5).Neg()); !got.Equal(Int(-5)) {
		t.Errorf("-5 = %v", got)
	}
	if got := mustV(Float(2.5).Neg()); !got.Equal(Float(-2.5)) {
		t.Errorf("-2.5 = %v", got)
	}
	if got := mustV(Str("ab").Add(Str("cd"))); !got.Equal(Str("abcd")) {
		t.Errorf("string concat = %v", got)
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	ops := []func(V, V) (V, error){V.Add, V.Sub, V.Mul, V.Div, V.Mod}
	for i, op := range ops {
		if got, err := op(Null(), Int(1)); err != nil || !got.IsNull() {
			t.Errorf("op %d: NULL op 1 = %v, %v", i, got, err)
		}
		if got, err := op(Int(1), Null()); err != nil || !got.IsNull() {
			t.Errorf("op %d: 1 op NULL = %v, %v", i, got, err)
		}
	}
	if got, err := Null().Neg(); err != nil || !got.IsNull() {
		t.Errorf("-NULL = %v, %v", got, err)
	}
}

func TestArithmeticTypeErrors(t *testing.T) {
	if _, err := Str("a").Add(Int(1)); err == nil {
		t.Error("string + int should error")
	}
	if _, err := Bool(true).Mul(Int(2)); err == nil {
		t.Error("bool * int should error")
	}
	if _, err := Float(1.5).Mod(Int(2)); err == nil {
		t.Error("float %% int should error")
	}
	if _, err := Str("x").Neg(); err == nil {
		t.Error("-string should error")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    V
		want string
	}{
		{Null(), "NULL"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Str("hi"), "hi"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.v, got, tc.want)
		}
	}
	if got := Str("it's").SQLString(); got != "'it''s'" {
		t.Errorf("SQLString = %q", got)
	}
	if got := Int(5).SQLString(); got != "5" {
		t.Errorf("SQLString int = %q", got)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want V
	}{
		{"", Null()},
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"3.25", Float(3.25)},
		{"true", Bool(true)},
		{"False", Bool(false)},
		{"null", Null()},
		{"hello", Str("hello")},
		{"12abc", Str("12abc")},
	}
	for _, tc := range cases {
		got := Parse(tc.in)
		if got.Kind() != tc.want.Kind() {
			t.Errorf("Parse(%q) kind = %v, want %v", tc.in, got.Kind(), tc.want.Kind())
			continue
		}
		if !got.IsNull() && !got.Equal(tc.want) {
			t.Errorf("Parse(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseAs(t *testing.T) {
	if v, err := ParseAs("7", KindInt); err != nil || !v.Equal(Int(7)) {
		t.Errorf("ParseAs int = %v, %v", v, err)
	}
	if v, err := ParseAs("7.5", KindFloat); err != nil || !v.Equal(Float(7.5)) {
		t.Errorf("ParseAs float = %v, %v", v, err)
	}
	if v, err := ParseAs("t", KindBool); err != nil || !v.Equal(Bool(true)) {
		t.Errorf("ParseAs bool = %v, %v", v, err)
	}
	if v, err := ParseAs("x", KindString); err != nil || !v.Equal(Str("x")) {
		t.Errorf("ParseAs string = %v, %v", v, err)
	}
	if v, err := ParseAs("", KindInt); err != nil || !v.IsNull() {
		t.Errorf("ParseAs empty = %v, %v (want NULL)", v, err)
	}
	if _, err := ParseAs("abc", KindInt); err == nil {
		t.Error("ParseAs(abc, int) should fail")
	}
	if _, err := ParseAs("abc", KindFloat); err == nil {
		t.Error("ParseAs(abc, float) should fail")
	}
	if _, err := ParseAs("abc", KindBool); err == nil {
		t.Error("ParseAs(abc, bool) should fail")
	}
}

func TestEncodeKeyDistinct(t *testing.T) {
	vals := []V{
		Null(), Bool(true), Bool(false), Int(0), Int(1), Int(-1),
		Float(0), Float(1.5), Str(""), Str("a"), Str("ab"),
	}
	seen := map[string]V{}
	for _, v := range vals {
		k := string(v.EncodeKey(nil))
		if prev, dup := seen[k]; dup {
			t.Errorf("EncodeKey collision: %v and %v", prev, v)
		}
		seen[k] = v
	}
}

func TestHashNumericCanonicalization(t *testing.T) {
	if Int(2).Hash() != Float(2).Hash() {
		t.Error("Int(2) and Float(2) must hash equal for hash joins")
	}
	if Int(2).Hash() == Int(3).Hash() {
		t.Error("suspicious hash collision 2 vs 3")
	}
}

// --- property-based tests -------------------------------------------------

func TestPropCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		c1, _ := Int(a).Compare(Int(b))
		c2, _ := Int(b).Compare(Int(a))
		return sign(c1) == -sign(c2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddCommutative(t *testing.T) {
	f := func(a, b int32) bool {
		x, err1 := Int(int64(a)).Add(Int(int64(b)))
		y, err2 := Int(int64(b)).Add(Int(int64(a)))
		return err1 == nil && err2 == nil && x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSubAddRoundTrip(t *testing.T) {
	f := func(a, b int32) bool {
		sum, _ := Int(int64(a)).Add(Int(int64(b)))
		back, _ := sum.Sub(Int(int64(b)))
		return back.Equal(Int(int64(a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropParseRoundTripInt(t *testing.T) {
	f := func(a int64) bool {
		v := Parse(strconv.FormatInt(a, 10))
		return v.Kind() == KindInt && v.IntVal() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropFloatCompareMatchesGo(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true // NaN excluded: datums never hold NaN in practice
		}
		c, null := Float(a).Compare(Float(b))
		if null {
			return false
		}
		switch {
		case a < b:
			return c < 0
		case a > b:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropEncodeKeyInjectiveInts(t *testing.T) {
	f := func(a, b int64) bool {
		ka := string(Int(a).EncodeKey(nil))
		kb := string(Int(b).EncodeKey(nil))
		return (a == b) == (ka == kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeKeyRoundTrip(t *testing.T) {
	vals := []V{
		Null(), Bool(true), Bool(false), Int(0), Int(-42), Int(1 << 40),
		Float(3.25), Float(-0.5), Str(""), Str("hello"), Str("with \x00 byte"),
	}
	// One buffer holding every encoding back to back: DecodeKey must be
	// self-delimiting, consuming exactly its own bytes.
	var buf []byte
	for _, v := range vals {
		buf = v.EncodeKey(buf)
	}
	rest := buf
	for i, want := range vals {
		var got V
		var err error
		got, rest, err = DecodeKey(rest)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got.Kind() != want.Kind() || got.String() != want.String() {
			t.Fatalf("value %d: decoded %s %q, want %s %q", i, got.Kind(), got, want.Kind(), want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decoding all values", len(rest))
	}
}

func TestDecodeKeyRejectsCorruptInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"unknown kind":     {99},
		"truncated bool":   {byte(KindBool)},
		"truncated int":    {byte(KindInt), 1, 2, 3},
		"truncated float":  {byte(KindFloat), 1},
		"truncated strlen": {byte(KindString), 0, 0},
		"string overrun":   Str("hello").EncodeKey(nil)[:10],
	}
	for name, in := range cases {
		if _, _, err := DecodeKey(in); err == nil {
			t.Errorf("%s: DecodeKey accepted corrupt input %v", name, in)
		}
	}
}
